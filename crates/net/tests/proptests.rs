//! Property tests for the network simulator.

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use alphasim_kernel::SimTime;
use alphasim_net::region::{lookahead_by_walk, RegionMap};
use alphasim_net::{LinkTiming, MessageClass, NetworkSim};
use alphasim_topology::{Degraded, NodeId, Topology, Torus2D};
use proptest::prelude::*;

fn classes() -> impl Strategy<Value = MessageClass> {
    prop::sample::select(vec![
        MessageClass::Request,
        MessageClass::Forward,
        MessageClass::BlockResponse,
        MessageClass::Io,
        MessageClass::Special,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation: every injected message is delivered exactly once, to
    /// its destination, with a latency no smaller than the zero-load bound.
    #[test]
    fn conservation_and_latency_bound(
        shape in (2usize..=6, 2usize..=4),
        msgs in prop::collection::vec((0usize..24, 0usize..24, 1u64..256, 0u64..100_000), 1..120),
        class in classes(),
    ) {
        let (c, r) = shape;
        let n = c * r;
        let torus = Torus2D::new(c, r);
        let timing = LinkTiming::ev7_torus();
        let mut net = NetworkSim::new(torus.clone(), timing);
        let mut expected = std::collections::HashMap::new();
        for (i, &(src, dst, bytes, at)) in msgs.iter().enumerate() {
            let (src, dst) = (src % n, dst % n);
            net.send(
                SimTime::from_ps(at),
                NodeId::new(src),
                NodeId::new(dst),
                class,
                bytes,
                i as u64,
            );
            expected.insert(i as u64, (src, dst, bytes));
        }
        let deliveries = net.drain_deliveries();
        prop_assert_eq!(deliveries.len(), msgs.len());
        for d in &deliveries {
            let (src, dst, bytes) = expected.remove(&d.tag).expect("duplicate delivery");
            prop_assert_eq!(d.src.index(), src);
            prop_assert_eq!(d.dst.index(), dst);
            prop_assert_eq!(d.bytes, bytes);
            // Zero-load lower bound: distance * min hop cost.
            let hops = torus.hop_distance(d.src, d.dst) as u32;
            prop_assert_eq!(d.hops, hops, "hops are minimal");
            let min_hop = timing.hop(alphasim_topology::LinkClass::Module);
            prop_assert!(d.latency() >= min_hop * u64::from(hops));
        }
        prop_assert!(expected.is_empty());
    }

    /// Utilization stays within [0,1] on every link under arbitrary load,
    /// and delivered bytes match the per-hop accounting.
    #[test]
    fn utilization_bounded(
        burst in 1usize..200,
        dst in 1usize..16,
    ) {
        let mut net = NetworkSim::new(Torus2D::new(4, 4), LinkTiming::ev7_torus());
        for i in 0..burst {
            net.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(dst % 16),
                MessageClass::Request,
                64,
                i as u64,
            );
        }
        net.drain();
        for (_, _, _, u, _) in net.link_stats() {
            prop_assert!((0.0..=1.0).contains(&u));
        }
        if dst % 16 != 0 {
            // Each hop of each message moves its bytes over one link.
            let hops = Torus2D::new(4, 4).hop_distance(NodeId::new(0), NodeId::new(dst % 16));
            prop_assert_eq!(net.total_link_bytes(), (burst * hops) as u64 * 64);
            prop_assert_eq!(net.total_grants(), (burst * hops) as u64);
        }
    }

    /// Determinism: identical injection sequences produce identical
    /// delivery schedules.
    #[test]
    fn deterministic_replay(
        msgs in prop::collection::vec((0usize..16, 0usize..16, 0u64..10_000), 1..60),
    ) {
        let run = || {
            let mut net = NetworkSim::new(Torus2D::new(4, 4), LinkTiming::ev7_torus());
            for (i, &(src, dst, at)) in msgs.iter().enumerate() {
                net.send(
                    SimTime::from_ps(at),
                    NodeId::new(src),
                    NodeId::new(dst),
                    MessageClass::Request,
                    32,
                    i as u64,
                );
            }
            net.drain_deliveries()
                .into_iter()
                .map(|d| (d.tag, d.delivered_at))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// The conservative-lookahead invariant: the incrementally-maintained
    /// lookahead equals the minimum latency over live inter-region links —
    /// computed by brute-force fabric walk — across torus sizes from 4x4 to
    /// 16x16 and under zero, one, or two link cuts; and restoring the cuts
    /// restores the healthy value.
    #[test]
    fn lookahead_is_min_inter_region_latency_under_cuts(
        shape in (4usize..=16, 4usize..=16),
        shards in 2usize..=6,
        picks in prop::collection::vec((0usize..1024, 0usize..8), 0..3),
    ) {
        let (c, r) = shape;
        let torus = Torus2D::new(c, r);
        let timing = LinkTiming::ev7_torus();
        let mut map = RegionMap::bands(&torus, shards);

        // Resolve the random picks into distinct undirected links.
        let mut cuts: Vec<(NodeId, NodeId)> = Vec::new();
        for &(ni, pi) in &picks {
            let a = NodeId::new(ni % (c * r));
            let ports = torus.ports(a);
            let b = ports[pi % ports.len()].to;
            let key = if a.index() <= b.index() { (a, b) } else { (b, a) };
            if !cuts.contains(&key) {
                cuts.push(key);
            }
        }
        let class_of = |a: NodeId, b: NodeId| {
            torus.ports(a).iter().find(|p| p.to == b).expect("link exists").class
        };

        // Cut both directed channels of each link, as the fabric does.
        for &(a, b) in &cuts {
            map.directed_link_down(a, b, class_of(a, b));
            map.directed_link_down(b, a, class_of(b, a));
        }
        let wounded = Degraded::new(torus.clone(), &cuts);
        prop_assert_eq!(
            map.conservative_lookahead(&timing),
            lookahead_by_walk(&wounded, &map, &timing),
            "incremental lookahead diverged from the walked minimum on a wounded {c}x{r}"
        );

        for &(a, b) in &cuts {
            map.directed_link_up(a, b, class_of(a, b));
            map.directed_link_up(b, a, class_of(b, a));
        }
        prop_assert_eq!(
            map.conservative_lookahead(&timing),
            lookahead_by_walk(&torus, &map, &timing),
            "restores did not recover the healthy lookahead"
        );
    }

    /// Sharding the event queue must not change a single delivery: same
    /// messages, same times, same hops at any shard count.
    #[test]
    fn sharded_deliveries_match_unsharded(
        msgs in prop::collection::vec((0usize..32, 0usize..32, 0u64..20_000), 1..60),
        shards in 2usize..=5,
    ) {
        let run = |shards: usize| {
            let mut net = NetworkSim::new(Torus2D::new(8, 4), LinkTiming::ev7_torus());
            net.set_shards(shards);
            for (i, &(src, dst, at)) in msgs.iter().enumerate() {
                net.send(
                    SimTime::from_ps(at),
                    NodeId::new(src),
                    NodeId::new(dst),
                    MessageClass::Request,
                    32,
                    i as u64,
                );
            }
            net.drain_deliveries()
                .into_iter()
                .map(|d| (d.tag, d.delivered_at, d.hops))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(1), run(shards));
    }
}
