//! Property tests for the network simulator.

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use alphasim_kernel::SimTime;
use alphasim_net::{LinkTiming, MessageClass, NetworkSim};
use alphasim_topology::{NodeId, Torus2D};
use proptest::prelude::*;

fn classes() -> impl Strategy<Value = MessageClass> {
    prop::sample::select(vec![
        MessageClass::Request,
        MessageClass::Forward,
        MessageClass::BlockResponse,
        MessageClass::Io,
        MessageClass::Special,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation: every injected message is delivered exactly once, to
    /// its destination, with a latency no smaller than the zero-load bound.
    #[test]
    fn conservation_and_latency_bound(
        shape in (2usize..=6, 2usize..=4),
        msgs in prop::collection::vec((0usize..24, 0usize..24, 1u64..256, 0u64..100_000), 1..120),
        class in classes(),
    ) {
        let (c, r) = shape;
        let n = c * r;
        let torus = Torus2D::new(c, r);
        let timing = LinkTiming::ev7_torus();
        let mut net = NetworkSim::new(torus.clone(), timing);
        let mut expected = std::collections::HashMap::new();
        for (i, &(src, dst, bytes, at)) in msgs.iter().enumerate() {
            let (src, dst) = (src % n, dst % n);
            net.send(
                SimTime::from_ps(at),
                NodeId::new(src),
                NodeId::new(dst),
                class,
                bytes,
                i as u64,
            );
            expected.insert(i as u64, (src, dst, bytes));
        }
        let deliveries = net.drain_deliveries();
        prop_assert_eq!(deliveries.len(), msgs.len());
        for d in &deliveries {
            let (src, dst, bytes) = expected.remove(&d.tag).expect("duplicate delivery");
            prop_assert_eq!(d.src.index(), src);
            prop_assert_eq!(d.dst.index(), dst);
            prop_assert_eq!(d.bytes, bytes);
            // Zero-load lower bound: distance * min hop cost.
            let hops = torus.hop_distance(d.src, d.dst) as u32;
            prop_assert_eq!(d.hops, hops, "hops are minimal");
            let min_hop = timing.hop(alphasim_topology::LinkClass::Module);
            prop_assert!(d.latency() >= min_hop * u64::from(hops));
        }
        prop_assert!(expected.is_empty());
    }

    /// Utilization stays within [0,1] on every link under arbitrary load,
    /// and delivered bytes match the per-hop accounting.
    #[test]
    fn utilization_bounded(
        burst in 1usize..200,
        dst in 1usize..16,
    ) {
        let mut net = NetworkSim::new(Torus2D::new(4, 4), LinkTiming::ev7_torus());
        for i in 0..burst {
            net.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(dst % 16),
                MessageClass::Request,
                64,
                i as u64,
            );
        }
        net.drain();
        for (_, _, _, u, _) in net.link_stats() {
            prop_assert!((0.0..=1.0).contains(&u));
        }
        if dst % 16 != 0 {
            // Each hop of each message moves its bytes over one link.
            let hops = Torus2D::new(4, 4).hop_distance(NodeId::new(0), NodeId::new(dst % 16));
            prop_assert_eq!(net.total_link_bytes(), (burst * hops) as u64 * 64);
            prop_assert_eq!(net.total_grants(), (burst * hops) as u64);
        }
    }

    /// Determinism: identical injection sequences produce identical
    /// delivery schedules.
    #[test]
    fn deterministic_replay(
        msgs in prop::collection::vec((0usize..16, 0usize..16, 0u64..10_000), 1..60),
    ) {
        let run = || {
            let mut net = NetworkSim::new(Torus2D::new(4, 4), LinkTiming::ev7_torus());
            for (i, &(src, dst, at)) in msgs.iter().enumerate() {
                net.send(
                    SimTime::from_ps(at),
                    NodeId::new(src),
                    NodeId::new(dst),
                    MessageClass::Request,
                    32,
                    i as u64,
                );
            }
            net.drain_deliveries()
                .into_iter()
                .map(|d| (d.tag, d.delivered_at))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
