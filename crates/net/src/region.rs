//! Region assignment for sharded simulation, and the conservative
//! lookahead those regions guarantee.
//!
//! The sharded event queue ([`alphasim_kernel::shard`]) needs two things
//! from the network layer: a deterministic node → region map, and the
//! **conservative lookahead** — the minimum latency of any live link whose
//! endpoints sit in different regions. Any event a region emits for a peer
//! region travels over such a link, so it fires at least one lookahead
//! after its cause: regions may therefore advance that far independently
//! without ever receiving an event in their past.
//!
//! Regions are contiguous node-index bands. Node ids are row-major on the
//! torus, so bands are row bands: a 8×8 torus at 4 shards becomes four 8×2
//! tiles, and the paper's bisection traffic (same-row mirrors) stays
//! intra-region while only North/South band-boundary and wrap links cross.
//!
//! The lookahead is maintained *incrementally*: [`RegionMap`] counts live
//! cross-region directed links per [`LinkClass`] at construction and
//! adjusts the counts as faults strike, so
//! [`conservative_lookahead`](RegionMap::conservative_lookahead) is a
//! `O(#classes)` fold rather than a fabric walk on every query. The
//! proptest suite pins this incremental value to the brute-force
//! [`lookahead_by_walk`] across torus sizes and link-cut sets.

use std::collections::BTreeMap;

use alphasim_kernel::SimDuration;
use alphasim_topology::{LinkClass, NodeId, Topology};

use crate::timing::LinkTiming;

/// A deterministic node → region partition with live cross-region link
/// accounting.
///
/// # Examples
///
/// ```
/// use alphasim_net::region::RegionMap;
/// use alphasim_net::LinkTiming;
/// use alphasim_topology::{Torus2D, NodeId};
///
/// let torus = Torus2D::new(8, 8);
/// let map = RegionMap::bands(&torus, 4);
/// assert_eq!(map.region_of(NodeId::new(0)), 0);
/// assert_eq!(map.region_of(NodeId::new(63)), 3);
/// let la = map
///     .conservative_lookahead(&LinkTiming::ev7_torus())
///     .expect("bands of a torus always share links");
/// // Cheapest cross-band link on an 8x8: a board-class North/South hop.
/// assert_eq!(la.as_ns(), 20.5);
/// ```
#[derive(Debug, Clone)]
pub struct RegionMap {
    node_region: Vec<usize>,
    shards: usize,
    /// Live directed cross-region links per class. Kept in an ordered map
    /// so iteration (and therefore the lookahead fold) is deterministic.
    cross: BTreeMap<LinkClass, u64>,
}

impl RegionMap {
    /// Partition `topo` into `shards` contiguous node-index bands (clamped
    /// to at least 1 and at most the node count) and count the directed
    /// links crossing band boundaries.
    pub fn bands<T: Topology>(topo: &T, shards: usize) -> Self {
        let n = topo.node_count();
        let shards = shards.clamp(1, n);
        let node_region = (0..n).map(|i| i * shards / n).collect();
        let mut map = RegionMap {
            node_region,
            shards,
            cross: BTreeMap::new(),
        };
        for i in 0..n {
            let node = NodeId::new(i);
            for p in topo.ports(node) {
                if map.region_of(node) != map.region_of(p.to) {
                    *map.cross.entry(p.class).or_insert(0) += 1;
                }
            }
        }
        map
    }

    /// Number of regions.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The region owning `node`.
    pub fn region_of(&self, node: NodeId) -> usize {
        self.node_region[node.index()]
    }

    /// Whether the directed link `from -> to` crosses regions.
    pub fn crosses(&self, from: NodeId, to: NodeId) -> bool {
        self.region_of(from) != self.region_of(to)
    }

    /// Record the directed channel `from -> to` (of `class`) going dead.
    /// No-op for intra-region links.
    pub fn directed_link_down(&mut self, from: NodeId, to: NodeId, class: LinkClass) {
        if self.crosses(from, to) {
            let count = self.cross.entry(class).or_insert(0);
            debug_assert!(*count > 0, "more cross links died than exist");
            *count = count.saturating_sub(1);
        }
    }

    /// Record the directed channel `from -> to` (of `class`) coming back.
    pub fn directed_link_up(&mut self, from: NodeId, to: NodeId, class: LinkClass) {
        if self.crosses(from, to) {
            *self.cross.entry(class).or_insert(0) += 1;
        }
    }

    /// The conservative lookahead: the cheapest hop (router + wire) over
    /// any *live* cross-region link, or `None` when no live link crosses a
    /// region boundary (a single region, or a fully severed boundary —
    /// either way there is no inter-region traffic to be conservative
    /// about).
    pub fn conservative_lookahead(&self, timing: &LinkTiming) -> Option<SimDuration> {
        self.cross
            .iter()
            .filter(|&(_, &count)| count > 0)
            .map(|(&class, _)| timing.hop(class))
            .min()
    }
}

/// Brute-force reference for the lookahead: walk every live port of `topo`
/// and take the cheapest hop whose endpoints `map` places in different
/// regions. This is the oracle the incremental accounting is tested
/// against; simulation code should use
/// [`RegionMap::conservative_lookahead`].
pub fn lookahead_by_walk<T: Topology>(
    topo: &T,
    map: &RegionMap,
    timing: &LinkTiming,
) -> Option<SimDuration> {
    let mut best: Option<SimDuration> = None;
    for i in 0..topo.node_count() {
        let node = NodeId::new(i);
        for p in topo.ports(node) {
            if map.crosses(node, p.to) {
                let hop = timing.hop(p.class);
                if best.is_none_or(|b| hop < b) {
                    best = Some(hop);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasim_topology::{Degraded, Torus2D};

    #[test]
    fn bands_are_contiguous_and_cover_every_node() {
        let torus = Torus2D::new(8, 8);
        let map = RegionMap::bands(&torus, 4);
        assert_eq!(map.shard_count(), 4);
        let mut prev = 0;
        for i in 0..64 {
            let r = map.region_of(NodeId::new(i));
            assert!(r >= prev, "regions are monotone in node index");
            prev = r;
        }
        assert_eq!(map.region_of(NodeId::new(63)), 3);
    }

    #[test]
    fn single_region_has_no_lookahead() {
        let torus = Torus2D::new(4, 4);
        let map = RegionMap::bands(&torus, 1);
        assert_eq!(
            map.conservative_lookahead(&LinkTiming::ev7_torus()),
            None,
            "one region: nothing is inter-region"
        );
    }

    #[test]
    fn shard_count_is_clamped_to_node_count() {
        let torus = Torus2D::new(2, 2);
        let map = RegionMap::bands(&torus, 64);
        assert_eq!(map.shard_count(), 4);
    }

    #[test]
    fn incremental_lookahead_matches_walk_on_healthy_tori() {
        let timing = LinkTiming::ev7_torus();
        for (c, r) in [(4, 4), (8, 4), (8, 8), (16, 16)] {
            let torus = Torus2D::new(c, r);
            for shards in [2, 3, 4] {
                let map = RegionMap::bands(&torus, shards);
                assert_eq!(
                    map.conservative_lookahead(&timing),
                    lookahead_by_walk(&torus, &map, &timing),
                    "{c}x{r} torus at {shards} shards"
                );
            }
        }
    }

    #[test]
    fn link_cuts_update_the_lookahead_incrementally() {
        // Cut both directed channels of a cross-band link and check the
        // incremental counts track the brute-force walk over the wounded
        // fabric.
        let timing = LinkTiming::ev7_torus();
        let torus = Torus2D::new(4, 4);
        let mut map = RegionMap::bands(&torus, 2);
        // Node 4 (row 1) -> node 8 (row 2) is a band-boundary board link.
        let (a, b) = (NodeId::new(4), NodeId::new(8));
        let class = torus
            .ports(a)
            .iter()
            .find(|p| p.to == b)
            .expect("link exists")
            .class;
        map.directed_link_down(a, b, class);
        map.directed_link_down(b, a, class);
        let wounded = Degraded::new(torus, &[(a, b)]);
        assert_eq!(
            map.conservative_lookahead(&timing),
            lookahead_by_walk(&wounded, &map, &timing)
        );
        map.directed_link_up(a, b, class);
        map.directed_link_up(b, a, class);
        assert_eq!(
            map.conservative_lookahead(&timing),
            lookahead_by_walk(wounded.inner(), &map, &timing),
            "restoring the link restores the healthy lookahead"
        );
    }

    #[test]
    fn row_bands_keep_bisection_traffic_intra_region() {
        // The resilience pattern pairs same-row mirrors; row bands must
        // keep those flows inside one region.
        let torus = Torus2D::new(8, 8);
        let map = RegionMap::bands(&torus, 4);
        for row in 0..8 {
            for col in 0..4 {
                let west = NodeId::new(row * 8 + col);
                let east = NodeId::new(row * 8 + (col + 4));
                assert_eq!(
                    map.region_of(west),
                    map.region_of(east),
                    "row {row} mirror pair split across regions"
                );
            }
        }
    }
}
