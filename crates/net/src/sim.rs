//! The message-level network simulator.

use alphasim_kernel::{FaultKind, FaultPlan, ShardedEventQueue, SimDuration, SimTime};
use alphasim_telemetry::trace::{PID_LINKS, PID_MESSAGES};
use alphasim_telemetry::{HopBreakdown, TraceSink};
use alphasim_topology::route::{RoutePolicy, Routes};
use alphasim_topology::{Coord, NodeId, Port, Topology};

use crate::link::Link;
use crate::msg::{Delivery, DroppedMsg, MessageClass, MessageId};
use crate::region::RegionMap;
use crate::timing::LinkTiming;

/// The region shard that hosts fabric-global events (fault strikes, caller
/// timers): these are barrier events with no single home node.
const GLOBAL_SHARD: usize = 0;

/// What one [`NetworkSim::step`] produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Step {
    /// A message reached its destination.
    Delivered(Delivery),
    /// A message was lost to a link failure (only with
    /// [`NetworkSim::set_drop_in_flight`] enabled).
    Dropped(DroppedMsg),
    /// A scheduled fault from the installed [`FaultPlan`] struck.
    Fault(FaultKind),
    /// A timer set with [`NetworkSim::set_timer`] fired.
    Timer(u64),
    /// An internal event (a hop, a link becoming free) was processed.
    Internal,
}

/// Why a live fault could not be applied (or survived).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultError {
    /// No such link exists in the underlying topology.
    NoSuchLink {
        /// One claimed end of the link.
        a: NodeId,
        /// The other claimed end.
        b: NodeId,
    },
    /// The link is already in the requested liveness state.
    AlreadyInState {
        /// One end of the link.
        a: NodeId,
        /// The other end.
        b: NodeId,
        /// The state it is already in.
        alive: bool,
    },
    /// Failing the link would disconnect at least one endpoint pair; the
    /// failure was rolled back and the fabric left routable.
    Partitioned {
        /// An endpoint that would lose reachability.
        from: NodeId,
        /// The endpoint it could no longer reach.
        to: NodeId,
    },
    /// The link is in a state that rejects the requested transition (e.g.
    /// degrading a dead link, or corrupting a flit on one).
    BadState {
        /// One end of the link.
        a: NodeId,
        /// The other end.
        b: NodeId,
        /// Why the transition is rejected.
        what: &'static str,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::NoSuchLink { a, b } => write!(f, "no link {a}<->{b} in the fabric"),
            FaultError::AlreadyInState { a, b, alive } => {
                let state = if *alive { "alive" } else { "dead" };
                write!(f, "link {a}<->{b} is already {state}")
            }
            FaultError::Partitioned { from, to } => {
                write!(
                    f,
                    "failure would partition the fabric: {from} cannot reach {to}"
                )
            }
            FaultError::BadState { a, b, what } => {
                write!(f, "link {a}<->{b} {what}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

#[derive(Debug)]
struct MsgState {
    src: NodeId,
    dst: NodeId,
    class: MessageClass,
    bytes: u64,
    tag: u64,
    injected_at: SimTime,
    hops: u32,
    serialized: bool,
    /// Lost to a link failure; reported as [`Step::Dropped`] when its
    /// pending arrival fires, then recycled.
    dropped: bool,
    /// When the message last joined an output queue (injection, a hop
    /// arrival, or an eviction re-route): the epoch its next grant wait is
    /// measured from.
    enqueued_at: SimTime,
    /// Per-stage latency attribution accumulated along the route.
    acc: HopBreakdown,
}

#[derive(Debug)]
enum Event {
    Arrive { msg: MessageId, node: NodeId },
    LinkFree { link: usize },
    Fault { kind: FaultKind },
    Timer { tag: u64 },
}

/// The live (non-failed) ports of the fabric, materialized so both
/// [`Routes::compute`] and [`Routes::minimal_ports`] see the same port
/// indexing after a failure.
struct LiveView<'a, T: Topology> {
    inner: &'a T,
    ports: &'a [Vec<Port>],
}

impl<T: Topology> Topology for LiveView<'_, T> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn ports(&self, node: NodeId) -> &[Port] {
        &self.ports[node.index()]
    }

    fn is_endpoint(&self, node: NodeId) -> bool {
        self.inner.is_endpoint(node)
    }

    fn coord(&self, node: NodeId) -> Option<Coord> {
        self.inner.coord(node)
    }
}

/// A discrete-event, message-level simulator of one fabric.
///
/// Fidelity choices (see DESIGN.md):
///
/// * **Routing** is minimal adaptive: at each hop a packet picks the
///   minimal-path output with the smallest backlog (the Adaptive channel);
///   I/O packets route deterministically, as in the 21364.
/// * **Virtual channels** appear as per-class FIFO queues per link with
///   strict priority arbitration, so responses never block behind requests.
///   Deadlock freedom of the escape network is *proved* separately
///   (`alphasim_topology::route::escape_network_is_acyclic`) rather than
///   re-enacted flit by flit; queues here are unbounded, with a calibrated
///   arbitration penalty per queued packet standing in for head-of-line
///   blocking — this is what bends Fig. 15's delivered bandwidth back past
///   saturation.
/// * **Wormhole pipelining**: a message pays its serialization latency once
///   (at injection) and router+wire latency per hop, while *occupying* each
///   traversed link for its full transfer time.
///
/// # Examples
///
/// ```
/// use alphasim_net::{NetworkSim, MessageClass, Step};
/// use alphasim_topology::{Torus2D, NodeId};
/// use alphasim_kernel::SimTime;
///
/// let mut net = NetworkSim::new(Torus2D::new(4, 4), alphasim_net::LinkTiming::ev7_torus());
/// net.send(SimTime::ZERO, NodeId::new(0), NodeId::new(5), MessageClass::Request, 16, 7);
/// let mut delivered = 0;
/// while let Some(step) = net.step() {
///     if let Step::Delivered(d) = step {
///         assert_eq!(d.tag, 7);
///         delivered += 1;
///     }
/// }
/// assert_eq!(delivered, 1);
/// ```
#[derive(Debug)]
pub struct NetworkSim<T: Topology> {
    topo: T,
    routes: Routes,
    policy: RoutePolicy,
    timing: LinkTiming,
    links: Vec<Link>,
    /// node index → port index → link id (over the *full* topology).
    link_of: Vec<Vec<usize>>,
    /// node index → live outgoing ports (dead links filtered out). Kept
    /// materialized so `routes` and `choose_output` agree on port indices.
    live_ports: Vec<Vec<Port>>,
    /// node index → live port index → link id, parallel to `live_ports`.
    live_link_of: Vec<Vec<usize>>,
    /// Endpoints whose CPU has stopped sourcing traffic (router still
    /// forwards, as a wounded EV7's does).
    drained: Vec<bool>,
    /// Whether a link failure loses the message occupying the wire (the
    /// coherence layer then sees [`Step::Dropped`] and must retry).
    drop_in_flight: bool,
    /// Node → region partition behind the sharded event queue; tracks live
    /// cross-region links so the conservative lookahead stays current as
    /// faults strike.
    region: RegionMap,
    /// The future-event list, sharded by topology region. All shards share
    /// one insertion sequence and `pop` is the global minimum, so the event
    /// order — and therefore every output byte — is identical at any shard
    /// count (see `alphasim_kernel::shard`).
    events: ShardedEventQueue<Event>,
    msgs: Vec<MsgState>,
    /// Slots in `msgs` whose message has been delivered, ready for reuse.
    /// A delivered [`MessageId`] is never dereferenced again (deliveries
    /// copy every field out, and link queues only hold in-flight ids), so
    /// recycling keeps `msgs` sized to the *in-flight* population instead of
    /// growing with every message ever sent.
    free: Vec<u32>,
    delivered: u64,
    dropped: u64,
    rerouted: u64,
    /// Chrome-trace sink; `None` (the default) costs one never-taken branch
    /// per hop and per delivery.
    trace: Option<Box<TraceSink>>,
}

impl<T: Topology> NetworkSim<T> {
    /// A simulator over `topo` with minimal adaptive routing.
    pub fn new(topo: T, timing: LinkTiming) -> Self {
        Self::with_policy(topo, timing, RoutePolicy::Minimal)
    }

    /// A simulator with an explicit shuffle-link policy (Fig. 18).
    pub fn with_policy(topo: T, timing: LinkTiming, policy: RoutePolicy) -> Self {
        let routes = Routes::compute(&topo, policy);
        let mut links = Vec::new();
        let mut link_of = Vec::with_capacity(topo.node_count());
        let mut live_ports = Vec::with_capacity(topo.node_count());
        for n in 0..topo.node_count() {
            let node = NodeId::new(n);
            let mut ids = Vec::new();
            for p in topo.ports(node) {
                ids.push(links.len());
                links.push(Link::new(node, p.to, p.class, p.dir));
            }
            link_of.push(ids);
            live_ports.push(topo.ports(node).to_vec());
        }
        let live_link_of = link_of.clone();
        let drained = vec![false; topo.node_count()];
        let region = RegionMap::bands(&topo, 1);
        NetworkSim {
            topo,
            routes,
            policy,
            timing,
            links,
            link_of,
            live_ports,
            live_link_of,
            drained,
            drop_in_flight: false,
            region,
            events: ShardedEventQueue::new(1),
            msgs: Vec::new(),
            free: Vec::new(),
            delivered: 0,
            dropped: 0,
            rerouted: 0,
            trace: None,
        }
    }

    /// The simulated topology.
    pub fn topology(&self) -> &T {
        &self.topo
    }

    /// The timing parameters in force.
    pub fn timing(&self) -> &LinkTiming {
        &self.timing
    }

    /// The routing policy in force.
    pub fn policy(&self) -> RoutePolicy {
        self.policy
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Message slots currently allocated (the high-water mark of messages
    /// simultaneously in flight, not the total ever sent — delivered slots
    /// are recycled through a free list).
    pub fn msg_slot_count(&self) -> usize {
        self.msgs.len()
    }

    /// Of the allocated slots, how many are free for reuse right now.
    pub fn free_slot_count(&self) -> usize {
        self.free.len()
    }

    /// Messages lost to link failures so far.
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }

    /// High-water mark of this simulator's own pending-event count (unlike
    /// the process-wide gauge in `alphasim_kernel`, this is scoped to one
    /// run and therefore deterministic under concurrent sweeps).
    pub fn event_queue_peak(&self) -> usize {
        self.events.peak_len()
    }

    /// Per-region high-water marks of the pending-event count, indexed by
    /// shard id (one entry when unsharded).
    pub fn shard_event_peaks(&self) -> &[usize] {
        self.events.shard_peaks()
    }

    /// Repartition the fabric into `shards` contiguous regions (row bands
    /// on the torus) and shard the event queue accordingly. The event
    /// *order* is unchanged — shards share one insertion sequence and pops
    /// take the global minimum — so every output byte is identical at any
    /// shard count; what changes is the queue's structure (per-region
    /// depth attribution, and the partitioning a conservative parallel
    /// epoch run needs).
    ///
    /// # Panics
    ///
    /// Panics if events are already pending: the shard map must be fixed
    /// before traffic is injected.
    pub fn set_shards(&mut self, shards: usize) {
        assert!(
            self.events.is_empty(),
            "set_shards must run before any event is scheduled"
        );
        self.region = RegionMap::bands(&self.topo, shards);
        self.events = ShardedEventQueue::new(self.region.shard_count());
    }

    /// The region-shard count in force (1 = unsharded).
    pub fn shards(&self) -> usize {
        self.events.shard_count()
    }

    /// The conservative lookahead of the current partition: the cheapest
    /// hop over any live cross-region link, or `None` when unsharded. This
    /// is the horizon up to which regions could advance independently —
    /// every cross-region effect is delayed at least this long by the wire
    /// that carries it.
    pub fn conservative_lookahead(&self) -> Option<SimDuration> {
        self.region.conservative_lookahead(&self.timing)
    }

    /// Invariant monitor: recompute the route tables from scratch over the
    /// live fabric and compare endpoint-pair distances against the tables in
    /// force. `Err` describes the first divergence — the incremental
    /// rebuild-on-fault machinery has let the tables rot.
    pub fn audit_routes(&self) -> Result<(), String> {
        let view = LiveView {
            inner: &self.topo,
            ports: &self.live_ports,
        };
        let fresh = Routes::compute(&view, self.policy);
        let eps = self.topo.endpoints();
        for &from in &eps {
            for &to in &eps {
                if from == to {
                    continue;
                }
                let installed = self.routes.distance(from, 0, to);
                let recomputed = fresh.distance(from, 0, to);
                if installed != recomputed {
                    return Err(format!(
                        "route table inconsistent: {from}->{to} installed distance \
                         {installed}, recomputed {recomputed}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Invariant monitor: compare the incrementally maintained conservative
    /// lookahead against the brute-force walk oracle over the live fabric.
    /// `Err` describes the divergence — fault plumbing has desynced the
    /// cross-region link accounting.
    pub fn audit_lookahead(&self) -> Result<(), String> {
        let view = LiveView {
            inner: &self.topo,
            ports: &self.live_ports,
        };
        let walked = crate::region::lookahead_by_walk(&view, &self.region, &self.timing);
        let incremental = self.conservative_lookahead();
        if walked == incremental {
            Ok(())
        } else {
            Err(format!(
                "conservative lookahead diverged from the oracle: incremental {incremental:?}, \
                 brute-force walk {walked:?}"
            ))
        }
    }

    /// Attach a Chrome-trace sink recording message lifetimes (one lane per
    /// source node) and link occupancy (one lane per directed link).
    /// Tracing changes nothing about the simulation itself — timestamps are
    /// simulated time, so a traced run still reproduces byte-identically.
    pub fn enable_trace(&mut self) {
        let mut sink = TraceSink::new();
        sink.name_process(PID_MESSAGES, "network: message lifetimes");
        sink.name_process(PID_LINKS, "network: link occupancy");
        for n in 0..self.topo.node_count() {
            if self.topo.is_endpoint(NodeId::new(n)) {
                let tid = n as u32;
                sink.name_thread(PID_MESSAGES, tid, &format!("node {n}"));
            }
        }
        self.trace = Some(Box::new(sink));
    }

    /// Detach and return the trace sink, if one was attached.
    pub fn take_trace(&mut self) -> Option<TraceSink> {
        self.trace.take().map(|b| *b)
    }

    /// Mutable access to the attached trace sink, so higher layers (memory
    /// controllers, coherence) can add their own lanes to the same file.
    pub fn trace_mut(&mut self) -> Option<&mut TraceSink> {
        self.trace.as_deref_mut()
    }

    /// Whether a trace sink is attached.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Queued messages evicted from failing links and re-routed so far.
    pub fn rerouted_count(&self) -> u64 {
        self.rerouted
    }

    /// Directed links currently dead.
    pub fn dead_link_count(&self) -> usize {
        self.links.iter().filter(|l| !l.is_alive()).count()
    }

    /// Whether `node`'s CPU has been drained by a fault.
    pub fn is_drained(&self, node: NodeId) -> bool {
        self.drained[node.index()]
    }

    /// When enabled, a link failure loses the message occupying the wire
    /// (reported as [`Step::Dropped`]); when disabled (the default), in-flight
    /// messages land on the far side before the link goes quiet.
    pub fn set_drop_in_flight(&mut self, drop: bool) {
        self.drop_in_flight = drop;
    }

    /// Schedule every fault in `plan` into the event stream. Each strike is
    /// reported as a [`Step::Fault`] when its time comes; link faults are
    /// applied to the fabric internally (panicking loudly if the plan
    /// partitions it), and [`FaultKind::ChannelDown`] is passed through for
    /// the memory layer to apply.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        for e in plan.events() {
            self.events
                .schedule(GLOBAL_SHARD, e.at, Event::Fault { kind: e.kind });
        }
    }

    /// Schedule a caller timer; [`step`](Self::step) reports it as
    /// [`Step::Timer`] with the same `tag` when `at` is reached. Coherence
    /// timeout-and-retry loops ride on these.
    pub fn set_timer(&mut self, at: SimTime, tag: u64) {
        self.events.schedule(GLOBAL_SHARD, at, Event::Timer { tag });
    }

    /// The link id of the directed link `from -> to`, if it exists.
    fn directed_link_id(&self, from: NodeId, to: NodeId) -> Option<usize> {
        if from.index() >= self.topo.node_count() {
            return None;
        }
        self.topo
            .ports(from)
            .iter()
            .position(|p| p.to == to)
            .map(|pi| self.link_of[from.index()][pi])
    }

    /// Fail the undirected link `a ↔ b` *now*: both directed channels go
    /// dead, queued messages are evicted and re-routed from the link's
    /// sending side, in-flight messages are lost if
    /// [`set_drop_in_flight`](Self::set_drop_in_flight) is on, and routes
    /// are recomputed over the surviving fabric. If the failure would
    /// partition the fabric it is rolled back and
    /// [`FaultError::Partitioned`] returned.
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) -> Result<(), FaultError> {
        let (la, lb) = match (self.directed_link_id(a, b), self.directed_link_id(b, a)) {
            (Some(la), Some(lb)) => (la, lb),
            _ => return Err(FaultError::NoSuchLink { a, b }),
        };
        if !self.links[la].is_alive() {
            return Err(FaultError::AlreadyInState { a, b, alive: false });
        }
        let now = self.now();
        for id in [la, lb] {
            self.links[id].set_alive(false);
            if self.drop_in_flight {
                if let Some(m) = self.links[id].in_flight() {
                    self.msgs[m.index()].dropped = true;
                }
            }
            let from = self.links[id].from;
            self.region
                .directed_link_down(from, self.links[id].to, self.links[id].class);
            let shard = self.region.region_of(from);
            for m in self.links[id].drain_queued() {
                self.rerouted += 1;
                self.events
                    .schedule(shard, now, Event::Arrive { msg: m, node: from });
            }
        }
        if let Err(e) = self.rebuild_routes() {
            // Roll back so the fabric stays routable (including any
            // in-flight messages condemned above).
            for id in [la, lb] {
                self.links[id].set_alive(true);
                self.region.directed_link_up(
                    self.links[id].from,
                    self.links[id].to,
                    self.links[id].class,
                );
                if let Some(m) = self.links[id].in_flight() {
                    self.msgs[m.index()].dropped = false;
                }
            }
            self.rebuild_routes()
                .expect("rollback restores connectivity");
            return Err(e);
        }
        Ok(())
    }

    /// Repair the undirected link `a ↔ b`. A dead link comes back up (and
    /// routes are recomputed over the healed fabric); a degraded link is
    /// restored to full speed (no route change — degradation never rerouted
    /// in the first place). A healthy full-speed link errs.
    pub fn restore_link(&mut self, a: NodeId, b: NodeId) -> Result<(), FaultError> {
        let (la, lb) = match (self.directed_link_id(a, b), self.directed_link_id(b, a)) {
            (Some(la), Some(lb)) => (la, lb),
            _ => return Err(FaultError::NoSuchLink { a, b }),
        };
        if self.links[la].is_alive() {
            if self.links[la].is_degraded() || self.links[lb].is_degraded() {
                self.links[la].set_degrade(1);
                self.links[lb].set_degrade(1);
                return Ok(());
            }
            return Err(FaultError::AlreadyInState { a, b, alive: true });
        }
        for id in [la, lb] {
            self.links[id].set_alive(true);
            self.links[id].set_degrade(1);
            self.region.directed_link_up(
                self.links[id].from,
                self.links[id].to,
                self.links[id].class,
            );
        }
        self.rebuild_routes()
            .expect("restoring a link cannot partition the fabric");
        Ok(())
    }

    /// Degrade the undirected link `a ↔ b`: it keeps carrying traffic, but
    /// wire flight and serialization stretch by
    /// [`alphasim_kernel::fault::DEGRADE_FACTOR`]. Routing does not react —
    /// the paper's adaptive routing sees backlog, not wire health — so the
    /// slow link visibly stretches latency instead of being detoured.
    /// [`restore_link`](Self::restore_link) heals it.
    pub fn degrade_link(&mut self, a: NodeId, b: NodeId) -> Result<(), FaultError> {
        let (la, lb) = match (self.directed_link_id(a, b), self.directed_link_id(b, a)) {
            (Some(la), Some(lb)) => (la, lb),
            _ => return Err(FaultError::NoSuchLink { a, b }),
        };
        if !self.links[la].is_alive() {
            return Err(FaultError::BadState {
                a,
                b,
                what: "is dead; cannot degrade",
            });
        }
        if self.links[la].is_degraded() {
            return Err(FaultError::BadState {
                a,
                b,
                what: "is already degraded",
            });
        }
        self.links[la].set_degrade(alphasim_kernel::fault::DEGRADE_FACTOR);
        self.links[lb].set_degrade(alphasim_kernel::fault::DEGRADE_FACTOR);
        Ok(())
    }

    /// Arm a transient on the directed link `from -> to`: the next flit it
    /// grants is corrupted in flight, caught by the receiver's CRC, and
    /// retransmitted by the link layer — the message survives with one extra
    /// transfer + wire flight of latency, counted in
    /// [`crc_retransmit_count`](Self::crc_retransmit_count).
    pub fn corrupt_next_flit(&mut self, from: NodeId, to: NodeId) -> Result<(), FaultError> {
        let Some(id) = self.directed_link_id(from, to) else {
            return Err(FaultError::NoSuchLink { a: from, b: to });
        };
        if !self.links[id].is_alive() {
            return Err(FaultError::BadState {
                a: from,
                b: to,
                what: "is dead; cannot corrupt a flit",
            });
        }
        self.links[id].arm_corruption();
        Ok(())
    }

    /// Brown out `node`'s router: every outbound link stalls until
    /// `now + duration`, then drains its backlog. Nothing is dropped or
    /// rerouted — a pause is pure added latency.
    pub fn pause_router(&mut self, node: NodeId, duration: SimDuration) {
        let until = self.now() + duration;
        let shard = self.region.region_of(node);
        for pi in 0..self.link_of[node.index()].len() {
            let id = self.link_of[node.index()][pi];
            if !self.links[id].is_alive() {
                continue;
            }
            if self.links[id].pause(until) {
                // The channel was idle: it now reads busy with nothing in
                // flight, and this release at pause end restores the
                // one-pending-LinkFree-per-busy-channel invariant.
                self.events
                    .schedule(shard, until, Event::LinkFree { link: id });
            }
        }
    }

    /// CRC-detected flit corruptions retransmitted fabric-wide so far.
    pub fn crc_retransmit_count(&self) -> u64 {
        self.links.iter().map(Link::crc_retransmits).sum()
    }

    /// Directed links currently degraded (slowed, not dead).
    pub fn degraded_link_count(&self) -> usize {
        self.links.iter().filter(|l| l.is_degraded()).count()
    }

    /// Stop `node`'s CPU from sourcing new traffic; its router keeps
    /// forwarding (the wounded-EV7 behaviour). [`send`](Self::send) from a
    /// drained node panics, so closed-loop drivers must consult
    /// [`is_drained`](Self::is_drained).
    pub fn drain_node(&mut self, node: NodeId) {
        self.drained[node.index()] = true;
    }

    /// Resume `node`'s CPU as a traffic source after a drain (the repair
    /// symmetry of [`drain_node`](Self::drain_node)). A no-op on a node that
    /// was never drained.
    pub fn undrain_node(&mut self, node: NodeId) {
        self.drained[node.index()] = false;
    }

    /// Refresh `live_ports`/`live_link_of` from link liveness and recompute
    /// routes; errs (without touching `routes`) if any endpoint pair lost
    /// reachability.
    fn rebuild_routes(&mut self) -> Result<(), FaultError> {
        for n in 0..self.topo.node_count() {
            let node = NodeId::new(n);
            let lp = &mut self.live_ports[n];
            let ll = &mut self.live_link_of[n];
            lp.clear();
            ll.clear();
            for (pi, p) in self.topo.ports(node).iter().enumerate() {
                let id = self.link_of[n][pi];
                if self.links[id].is_alive() {
                    lp.push(*p);
                    ll.push(id);
                }
            }
        }
        let view = LiveView {
            inner: &self.topo,
            ports: &self.live_ports,
        };
        let routes = Routes::compute(&view, self.policy);
        let eps = self.topo.endpoints();
        for &from in &eps {
            for &to in &eps {
                if from != to && routes.distance(from, 0, to) == Routes::UNREACHABLE {
                    return Err(FaultError::Partitioned { from, to });
                }
            }
        }
        self.routes = routes;
        Ok(())
    }

    /// Inject a message at time `at` (which must not be in the past).
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`now`](Self::now), or if `src`/`dst`
    /// are out of range.
    pub fn send(
        &mut self,
        at: SimTime,
        src: NodeId,
        dst: NodeId,
        class: MessageClass,
        bytes: u64,
        tag: u64,
    ) -> MessageId {
        assert!(src.index() < self.topo.node_count(), "bad source");
        assert!(dst.index() < self.topo.node_count(), "bad destination");
        assert!(
            !self.drained[src.index()],
            "send from drained node {src}; check is_drained() first"
        );
        let state = MsgState {
            src,
            dst,
            class,
            bytes,
            tag,
            injected_at: at,
            hops: 0,
            serialized: false,
            dropped: false,
            enqueued_at: at,
            acc: HopBreakdown::default(),
        };
        let id = if let Some(slot) = self.free.pop() {
            self.msgs[slot as usize] = state;
            MessageId(slot)
        } else {
            let id = MessageId(u32::try_from(self.msgs.len()).expect("too many messages"));
            self.msgs.push(state);
            id
        };
        let shard = self.region.region_of(src);
        self.events
            .schedule(shard, at, Event::Arrive { msg: id, node: src });
        id
    }

    /// Process one event. `None` when the network is drained.
    pub fn step(&mut self) -> Option<Step> {
        let (now, event) = self.events.pop()?;
        match event {
            Event::Arrive { msg, node } => {
                if self.msgs[msg.index()].dropped {
                    self.dropped += 1;
                    let m = &self.msgs[msg.index()];
                    let report = DroppedMsg {
                        id: msg,
                        src: m.src,
                        dst: m.dst,
                        class: m.class,
                        bytes: m.bytes,
                        tag: m.tag,
                        injected_at: m.injected_at,
                        dropped_at: now,
                        hops: m.hops,
                    };
                    self.free.push(msg.0);
                    return Some(Step::Dropped(report));
                }
                if node == self.msgs[msg.index()].dst {
                    self.delivered += 1;
                    let m = &self.msgs[msg.index()];
                    let delivery = Delivery {
                        id: msg,
                        src: m.src,
                        dst: m.dst,
                        class: m.class,
                        bytes: m.bytes,
                        tag: m.tag,
                        injected_at: m.injected_at,
                        delivered_at: now,
                        hops: m.hops,
                        breakdown: m.acc,
                    };
                    if let Some(tr) = self.trace.as_deref_mut() {
                        let tid = delivery.src.index() as u32;
                        tr.complete(
                            delivery.class.name(),
                            "msg",
                            PID_MESSAGES,
                            tid,
                            delivery.injected_at.as_ps(),
                            delivery.latency().as_ps(),
                            &[
                                ("tag", delivery.tag),
                                ("hops", u64::from(delivery.hops)),
                                ("dst", delivery.dst.index() as u64),
                            ],
                        );
                    }
                    self.free.push(msg.0);
                    return Some(Step::Delivered(delivery));
                }
                let link_id = self.choose_output(msg, node);
                let class = self.msgs[msg.index()].class;
                self.links[link_id].enqueue(class, msg);
                if !self.links[link_id].is_busy() {
                    self.start_transfer(link_id, now);
                }
                Some(Step::Internal)
            }
            Event::LinkFree { link } => {
                // A router pause extends the channel's hold: the release
                // re-arms itself at the pause end instead of freeing early.
                let until = self.links[link].pause_until();
                if until > now {
                    let shard = self.region.region_of(self.links[link].from);
                    self.events.schedule(shard, until, Event::LinkFree { link });
                    return Some(Step::Internal);
                }
                self.links[link].release();
                if self.links[link].is_alive() && self.links[link].backlog() > 0 {
                    self.start_transfer(link, now);
                }
                Some(Step::Internal)
            }
            Event::Fault { kind } => {
                match kind {
                    FaultKind::LinkDown { a, b } => {
                        let (a, b) = (NodeId::new(a), NodeId::new(b));
                        if let Err(e) = self.fail_link(a, b) {
                            panic!("fault plan could not be applied: {e}");
                        }
                    }
                    FaultKind::LinkUp { a, b } => {
                        let (a, b) = (NodeId::new(a), NodeId::new(b));
                        if let Err(e) = self.restore_link(a, b) {
                            panic!("fault plan could not be applied: {e}");
                        }
                    }
                    FaultKind::LinkDegrade { a, b } => {
                        let (a, b) = (NodeId::new(a), NodeId::new(b));
                        if let Err(e) = self.degrade_link(a, b) {
                            panic!("fault plan could not be applied: {e}");
                        }
                    }
                    FaultKind::FlitCorrupt { from, to } => {
                        let (from, to) = (NodeId::new(from), NodeId::new(to));
                        if let Err(e) = self.corrupt_next_flit(from, to) {
                            panic!("fault plan could not be applied: {e}");
                        }
                    }
                    FaultKind::NodeDrain { node } => self.drain_node(NodeId::new(node)),
                    FaultKind::NodeUndrain { node } => self.undrain_node(NodeId::new(node)),
                    FaultKind::RouterPause { node, ps } => {
                        self.pause_router(NodeId::new(node), SimDuration::from_ps(ps));
                    }
                    // Memory-channel faults belong to the Zbox layer; pass
                    // the strike through for the system driver to apply.
                    FaultKind::ChannelDown { .. } | FaultKind::ChannelUp { .. } => {}
                }
                Some(Step::Fault(kind))
            }
            Event::Timer { tag } => Some(Step::Timer(tag)),
        }
    }

    /// Run until no events remain, discarding deliveries.
    pub fn drain(&mut self) {
        while self.step().is_some() {}
    }

    /// Run until no events remain, collecting deliveries.
    pub fn drain_deliveries(&mut self) -> Vec<Delivery> {
        let mut out = Vec::new();
        while let Some(step) = self.step() {
            if let Step::Delivered(d) = step {
                out.push(d);
            }
        }
        out
    }

    /// Pick the output link for `msg` at `node`: minimal adaptive for
    /// coherence classes, deterministic (first minimal port) for I/O. Routes
    /// and port indices are over the live (non-failed) fabric.
    fn choose_output(&self, msg: MessageId, node: NodeId) -> usize {
        let m = &self.msgs[msg.index()];
        let view = LiveView {
            inner: &self.topo,
            ports: &self.live_ports,
        };
        let candidates = self.routes.minimal_ports(&view, node, m.hops, m.dst);
        debug_assert!(!candidates.is_empty(), "routing dead end");
        let chosen = if m.class.may_route_adaptively() {
            *candidates
                .iter()
                .min_by_key(|&&pi| {
                    let link = &self.links[self.live_link_of[node.index()][pi]];
                    (link.backlog() + usize::from(link.is_busy()), pi)
                })
                .expect("non-empty candidates")
        } else {
            candidates[0]
        };
        self.live_link_of[node.index()][chosen]
    }

    /// Grant the head-of-queue packet on `link_id` and schedule its arrival
    /// and the link's next availability.
    fn start_transfer(&mut self, link_id: usize, now: SimTime) {
        let Some(msg) = self.links[link_id].grant() else {
            return;
        };
        // A degraded link stretches everything paced by the wire — transfer
        // occupancy, serialization, and flight — by a fixed factor (1 when
        // healthy, so the arithmetic below is bit-identical to a fault-free
        // build). An armed transient costs one extra transfer + flight: the
        // receiver's CRC rejects the flit and the link layer resends it.
        let stretch = self.links[link_id].degrade_factor();
        let retransmit = self.links[link_id].take_corruption();
        let m = &mut self.msgs[msg.index()];
        let transfer =
            SimDuration::transfer_time(m.bytes, self.timing.bandwidth_gbps).saturating_mul(stretch);
        let backlog = self.links[link_id].backlog() as u32;
        let penalty = SimDuration::from_ns(
            f64::from(backlog.min(self.timing.congestion_cap))
                * self.timing.congestion_ns_per_queued,
        );
        let serialization = if m.serialized {
            SimDuration::ZERO
        } else {
            m.serialized = true;
            transfer
        };
        let wire = self
            .timing
            .wire(self.links[link_id].class)
            .saturating_mul(stretch);
        let resend = if retransmit {
            transfer + wire
        } else {
            SimDuration::ZERO
        };
        let occupancy = transfer
            + penalty
            + if retransmit {
                transfer
            } else {
                SimDuration::ZERO
            };
        m.hops += 1;
        // Per-hop latency attribution. The arrival below fires at exactly
        // grant + router + wire + serialization + penalty (+ resend), so
        // these integer picosecond charges sum to the end-to-end latency
        // with no rounding. A retransmit is charged as a second
        // serialization plus a second wire flight. `enqueued_at` then moves
        // to the arrival instant: the message joins its next output queue
        // the moment it arrives, so the next hop's grant wait is measured
        // from there (and an eviction re-route keeps accruing queue time
        // against the same epoch).
        m.acc.queued_ps += now.since(m.enqueued_at).as_ps();
        m.acc.router_ps += self.timing.router_latency.as_ps();
        m.acc.wire_ps += wire.as_ps() + if retransmit { wire.as_ps() } else { 0 };
        m.acc.serialization_ps +=
            serialization.as_ps() + if retransmit { transfer.as_ps() } else { 0 };
        m.acc.congestion_ps += penalty.as_ps();
        let arrive_at = now + self.timing.router_latency + wire + serialization + penalty + resend;
        m.enqueued_at = arrive_at;
        let to = self.links[link_id].to;
        let (class, bytes, tag) = (m.class, m.bytes, m.tag);
        self.links[link_id].account(class, bytes, occupancy);
        if let Some(tr) = self.trace.as_deref_mut() {
            let tid = link_id as u32;
            tr.complete(
                class.name(),
                "link",
                PID_LINKS,
                tid,
                now.as_ps(),
                occupancy.as_ps(),
                &[("tag", tag), ("backlog", u64::from(backlog))],
            );
        }
        let to_shard = self.region.region_of(to);
        let free_shard = self.region.region_of(self.links[link_id].from);
        self.events
            .schedule(to_shard, arrive_at, Event::Arrive { msg, node: to });
        self.events.schedule(
            free_shard,
            now + occupancy,
            Event::LinkFree { link: link_id },
        );
    }

    /// The zero-load latency of a `bytes`-sized message over `hops` hops of
    /// `class`-class links (analytic; used to calibrate and to test the
    /// simulator against itself).
    pub fn unloaded_latency(
        &self,
        hops: &[alphasim_topology::LinkClass],
        bytes: u64,
    ) -> SimDuration {
        let mut total = SimDuration::transfer_time(bytes, self.timing.bandwidth_gbps);
        for &class in hops {
            total += self.timing.router_latency + self.timing.wire(class);
        }
        total
    }

    /// Per-link statistics: `(from, to, direction, utilization, bytes)`.
    pub fn link_stats(
        &self,
    ) -> impl Iterator<
        Item = (
            NodeId,
            NodeId,
            Option<alphasim_topology::Direction>,
            f64,
            u64,
        ),
    > + '_ {
        let now = self.now();
        self.links
            .iter()
            .map(move |l| (l.from, l.to, l.dir, l.utilization(now), l.bytes()))
    }

    /// Mean utilization of *live* links whose direction satisfies `pred`
    /// (e.g. horizontal for the GUPS East/West analysis, Fig. 24). Dead
    /// links are excluded so a wounded fabric is not averaged down by wires
    /// that cannot carry traffic.
    pub fn mean_utilization_where(
        &self,
        pred: impl Fn(Option<alphasim_topology::Direction>) -> bool,
    ) -> f64 {
        let now = self.now();
        let (sum, n) = self
            .links
            .iter()
            .filter(|l| l.is_alive() && pred(l.dir))
            .fold((0.0, 0usize), |(s, n), l| (s + l.utilization(now), n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// The directed links currently dead, as `(from, to)` pairs in link-id
    /// order — consumers reporting per-link bandwidth should skip these.
    pub fn dead_links(&self) -> Vec<(NodeId, NodeId)> {
        self.links
            .iter()
            .filter(|l| !l.is_alive())
            .map(|l| (l.from, l.to))
            .collect()
    }

    /// Total bytes delivered onto links of the whole fabric.
    pub fn total_link_bytes(&self) -> u64 {
        self.links.iter().map(Link::bytes).sum()
    }

    /// Total packet grants across all output arbiters (each hop of each
    /// message is one grant).
    pub fn total_grants(&self) -> u64 {
        self.links.iter().map(Link::granted).sum()
    }

    /// Fabric bytes moved per message class — the protocol-traffic
    /// breakdown (data responses dominate coherence traffic).
    pub fn class_byte_totals(&self) -> [(MessageClass, u64); 5] {
        MessageClass::ALL.map(|c| (c, self.links.iter().map(|l| l.class_bytes(c)).sum()))
    }

    /// Mean cumulative busy time of one node's *live* outgoing links, for
    /// interval sampling of its IP-link gauge.
    pub fn node_ip_busy(&self, node: NodeId) -> SimDuration {
        let ids = &self.live_link_of[node.index()];
        if ids.is_empty() {
            return SimDuration::ZERO;
        }
        let total: SimDuration = ids.iter().map(|&i| self.links[i].busy_time()).sum();
        total / ids.len() as u64
    }

    /// Mean cumulative busy time over *live* links whose direction satisfies
    /// `pred`, for interval sampling (e.g. East/West vs North/South).
    pub fn mean_busy_where(
        &self,
        pred: impl Fn(Option<alphasim_topology::Direction>) -> bool,
    ) -> SimDuration {
        let (sum, n) = self
            .links
            .iter()
            .filter(|l| l.is_alive() && pred(l.dir))
            .fold((SimDuration::ZERO, 0u64), |(s, n), l| {
                (s + l.busy_time(), n + 1)
            });
        if n == 0 {
            SimDuration::ZERO
        } else {
            sum / n
        }
    }

    /// *Live* outgoing-link utilizations of one node, averaged (Xmesh's
    /// per-node IP-link gauge; a node with every link dead reads 0).
    pub fn node_ip_utilization(&self, node: NodeId) -> f64 {
        let now = self.now();
        let ids = &self.live_link_of[node.index()];
        if ids.is_empty() {
            return 0.0;
        }
        ids.iter()
            .map(|&i| self.links[i].utilization(now))
            .sum::<f64>()
            / ids.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasim_kernel::DetRng;
    use alphasim_topology::{LinkClass, Torus2D};

    fn sim4x4() -> NetworkSim<Torus2D> {
        NetworkSim::new(Torus2D::new(4, 4), LinkTiming::ev7_torus())
    }

    #[test]
    fn single_message_latency_is_analytic() {
        let mut net = sim4x4();
        // 0 -> 1 is one Board hop East.
        net.send(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(1),
            MessageClass::Request,
            16,
            0,
        );
        let d = net.drain_deliveries();
        assert_eq!(d.len(), 1);
        let expect = net.unloaded_latency(&[LinkClass::Board], 16);
        assert_eq!(d[0].latency(), expect);
        assert_eq!(d[0].hops, 1);
    }

    #[test]
    fn self_send_is_immediate() {
        let mut net = sim4x4();
        net.send(
            SimTime::ZERO,
            NodeId::new(3),
            NodeId::new(3),
            MessageClass::Special,
            8,
            42,
        );
        let d = net.drain_deliveries();
        assert_eq!(d[0].hops, 0);
        assert_eq!(d[0].latency(), SimDuration::ZERO);
    }

    #[test]
    fn all_messages_are_delivered() {
        // Conservation under random all-to-all traffic.
        let mut net = sim4x4();
        let mut rng = DetRng::seeded(11);
        let n = 16;
        let mut sent = 0;
        for i in 0..500u64 {
            let src = rng.index(n);
            let dst = rng.index_excluding(n, src);
            let at = SimTime::from_ps(i * 1000);
            net.send(
                at,
                NodeId::new(src),
                NodeId::new(dst),
                MessageClass::Request,
                16,
                i,
            );
            sent += 1;
        }
        let d = net.drain_deliveries();
        assert_eq!(d.len(), sent);
        // Tags unique => no duplication.
        let mut tags: Vec<u64> = d.iter().map(|x| x.tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), sent);
    }

    /// Drive random all-to-all traffic, with a link failing and recovering
    /// mid-run, and return every delivery as a comparable tuple.
    fn churn_deliveries(shards: usize) -> Vec<(u64, u64, u32, u64)> {
        let mut net = NetworkSim::new(Torus2D::new(8, 4), LinkTiming::ev7_torus());
        net.set_shards(shards);
        let mut rng = DetRng::seeded(23);
        let n = 32;
        let mut out = Vec::new();
        for i in 0..400u64 {
            let src = rng.index(n);
            let dst = rng.index_excluding(n, src);
            net.send(
                SimTime::from_ps(i * 700),
                NodeId::new(src),
                NodeId::new(dst),
                MessageClass::Request,
                16,
                i,
            );
            if i == 120 {
                net.fail_link(NodeId::new(4), NodeId::new(12))
                    .expect("cutting one link cannot partition a torus");
            }
            if i == 300 {
                net.restore_link(NodeId::new(4), NodeId::new(12))
                    .expect("link was down");
            }
        }
        for d in net.drain_deliveries() {
            out.push((d.tag, d.delivered_at.as_ps(), d.hops, d.latency().as_ps()));
        }
        out
    }

    #[test]
    fn sharded_runs_are_byte_identical_to_unsharded() {
        // The sharded queue shares one insertion sequence and pops the
        // global minimum, so the event order — and therefore every delivery
        // — must match the unsharded run exactly, faults and all.
        let baseline = churn_deliveries(1);
        assert!(!baseline.is_empty());
        for shards in [2, 4] {
            assert_eq!(
                churn_deliveries(shards),
                baseline,
                "{shards} shards diverged from unsharded run"
            );
        }
    }

    #[test]
    fn lookahead_tracks_faults_on_the_live_fabric() {
        let net = sim4x4();
        assert_eq!(net.conservative_lookahead(), None, "unsharded: no horizon");
        let mut net = sim4x4();
        net.set_shards(2);
        // 4x4 band boundary crossings are North/South Board hops: 20.5 ns.
        let la = net
            .conservative_lookahead()
            .expect("two regions share links");
        assert_eq!(la.as_ns(), 20.5);
        // Cutting a boundary link must not *raise* the horizon above the
        // remaining boundary links (and here they are all the same class).
        net.fail_link(NodeId::new(4), NodeId::new(8))
            .expect("single cut is routable");
        assert_eq!(
            net.conservative_lookahead().expect("boundary still linked"),
            la
        );
        net.restore_link(NodeId::new(4), NodeId::new(8))
            .expect("link was down");
        assert_eq!(net.conservative_lookahead(), Some(la));
    }

    #[test]
    fn shard_peaks_attribute_depth_per_region() {
        let mut net = sim4x4();
        net.set_shards(2);
        for dst in 1..16 {
            net.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(dst),
                MessageClass::Request,
                16,
                dst as u64,
            );
        }
        net.drain_deliveries();
        let peaks = net.shard_event_peaks();
        assert_eq!(peaks.len(), 2);
        assert!(peaks[0] > 0, "source region saw events");
        assert!(peaks[1] > 0, "far band saw arrivals");
        assert!(peaks.iter().sum::<usize>() >= net.event_queue_peak());
    }

    #[test]
    fn hops_match_torus_distance() {
        let mut net = sim4x4();
        let t = net.topology().clone();
        for dst in 1..16 {
            net.send(
                net.now(),
                NodeId::new(0),
                NodeId::new(dst),
                MessageClass::Request,
                16,
                dst as u64,
            );
        }
        for d in net.drain_deliveries() {
            assert_eq!(
                d.hops,
                t.hop_distance(d.src, d.dst) as u32,
                "{} -> {}",
                d.src,
                d.dst
            );
        }
    }

    #[test]
    fn responses_overtake_queued_requests() {
        let mut net = sim4x4();
        // Flood one link with requests, then send a response; the response
        // must be granted at the first arbitration after it arrives.
        for i in 0..10 {
            net.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(1),
                MessageClass::Request,
                64,
                i,
            );
        }
        net.send(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(1),
            MessageClass::BlockResponse,
            64,
            999,
        );
        let d = net.drain_deliveries();
        let response_pos = d.iter().position(|x| x.tag == 999).unwrap();
        assert!(
            response_pos <= 1,
            "response delivered {response_pos} deep despite priority VCs"
        );
    }

    #[test]
    fn adaptive_routing_uses_both_minimal_paths() {
        let mut net = sim4x4();
        // 0 -> 5 has minimal first hops East (to 1) and South (to 4).
        for i in 0..20 {
            net.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(5),
                MessageClass::Request,
                64,
                i,
            );
        }
        net.drain();
        let east: u64 = net
            .link_stats()
            .filter(|&(f, t, _, _, _)| f == NodeId::new(0) && t == NodeId::new(1))
            .map(|(_, _, _, _, b)| b)
            .sum();
        let south: u64 = net
            .link_stats()
            .filter(|&(f, t, _, _, _)| f == NodeId::new(0) && t == NodeId::new(4))
            .map(|(_, _, _, _, b)| b)
            .sum();
        assert!(east > 0 && south > 0, "east={east} south={south}");
        // Near-even split under symmetric load.
        let ratio = east as f64 / south as f64;
        assert!((0.5..=2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn io_routes_deterministically() {
        let mut net = sim4x4();
        for i in 0..20 {
            net.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(5),
                MessageClass::Io,
                64,
                i,
            );
        }
        net.drain();
        let used: Vec<(NodeId, u64)> = net
            .link_stats()
            .filter(|&(f, _, _, _, b)| f == NodeId::new(0) && b > 0)
            .map(|(_, t, _, _, b)| (t, b))
            .collect();
        assert_eq!(used.len(), 1, "I/O must not spread: {used:?}");
    }

    #[test]
    fn congestion_raises_latency() {
        let light = {
            let mut net = sim4x4();
            net.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(2),
                MessageClass::Request,
                64,
                0,
            );
            net.drain_deliveries()[0].latency()
        };
        let heavy = {
            let mut net = sim4x4();
            for i in 0..200 {
                net.send(
                    SimTime::ZERO,
                    NodeId::new(0),
                    NodeId::new(2),
                    MessageClass::Request,
                    64,
                    i,
                );
            }
            let d = net.drain_deliveries();
            d.iter().map(|x| x.latency()).max().unwrap()
        };
        assert!(
            heavy > light * 20,
            "queueing should dominate: {light} vs {heavy}"
        );
    }

    #[test]
    fn link_utilization_bounded_and_positive() {
        let mut net = sim4x4();
        for i in 0..100 {
            net.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(1),
                MessageClass::Request,
                64,
                i,
            );
        }
        net.drain();
        for (_, _, _, u, _) in net.link_stats() {
            assert!((0.0..=1.0).contains(&u));
        }
        assert!(net.node_ip_utilization(NodeId::new(0)) > 0.0);
        assert!(net.total_link_bytes() >= 100 * 64);
        assert_eq!(net.delivered_count(), 100);
    }

    #[test]
    fn msg_slots_bounded_by_in_flight_population() {
        // Regression test for the message free list: send 20 waves of 50
        // messages, draining between waves. Live slot capacity must track the
        // in-flight high-water mark (≤ one wave), not the 1000 total sent.
        let mut net = sim4x4();
        let mut rng = DetRng::seeded(7);
        for wave in 0..20u64 {
            for i in 0..50u64 {
                let src = rng.index(16);
                let dst = rng.index_excluding(16, src);
                net.send(
                    net.now(),
                    NodeId::new(src),
                    NodeId::new(dst),
                    MessageClass::Request,
                    16,
                    wave * 50 + i,
                );
            }
            net.drain();
        }
        assert_eq!(net.delivered_count(), 1000);
        assert!(
            net.msg_slot_count() <= 50,
            "slot table grew past one wave: {}",
            net.msg_slot_count()
        );
        // Everything is delivered, so every allocated slot is reusable.
        assert_eq!(net.free_slot_count(), net.msg_slot_count());
    }

    #[test]
    fn recycled_ids_deliver_with_correct_payloads() {
        // After a slot is recycled its new message must carry its own
        // src/dst/tag, not the previous occupant's.
        let mut net = sim4x4();
        net.send(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(1),
            MessageClass::Request,
            16,
            1,
        );
        let first = net.drain_deliveries();
        assert_eq!(first[0].tag, 1);
        let at = net.now();
        let id = net.send(
            at,
            NodeId::new(2),
            NodeId::new(7),
            MessageClass::Forward,
            32,
            2,
        );
        assert_eq!(id, first[0].id, "slot was recycled");
        let second = net.drain_deliveries();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].tag, 2);
        assert_eq!(second[0].src, NodeId::new(2));
        assert_eq!(second[0].dst, NodeId::new(7));
        assert_eq!(second[0].bytes, 32);
    }

    #[test]
    fn failed_link_reroutes_queued_traffic_without_loss() {
        let mut net = sim4x4();
        // Flood the 0->1 link, then cut it while the backlog is deep. With
        // drop-in-flight off, every message must still be delivered, just
        // over detours.
        for i in 0..30 {
            net.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(1),
                MessageClass::Io, // deterministic single path: all queue on 0->1
                64,
                i,
            );
        }
        let mut delivered = 0;
        let mut steps = 0;
        while let Some(step) = net.step() {
            steps += 1;
            if steps == 5 {
                net.fail_link(NodeId::new(0), NodeId::new(1)).unwrap();
                assert_eq!(net.dead_link_count(), 2, "both directions die");
            }
            if let Step::Delivered(_) = step {
                delivered += 1;
            }
        }
        assert_eq!(delivered, 30, "no message may be lost to rerouting");
        assert_eq!(net.dropped_count(), 0);
        assert!(net.rerouted_count() > 0, "backlog must have been evicted");
        // Delivered over detours: some messages took more than one hop.
        assert!(net.delivered_count() == 30);
    }

    #[test]
    fn drop_in_flight_reports_the_wire_occupant() {
        let mut net = sim4x4();
        net.set_drop_in_flight(true);
        for i in 0..5 {
            net.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(1),
                MessageClass::Io,
                64,
                i,
            );
        }
        let mut drops = Vec::new();
        let mut delivered = 0;
        let mut cut = false;
        while let Some(step) = net.step() {
            if !cut && net.now() > SimTime::ZERO {
                cut = true;
                net.fail_link(NodeId::new(0), NodeId::new(1)).unwrap();
            }
            match step {
                Step::Dropped(d) => drops.push(d),
                Step::Delivered(_) => delivered += 1,
                _ => {}
            }
        }
        assert_eq!(drops.len(), 1, "exactly the wire occupant is lost");
        assert_eq!(net.dropped_count(), 1);
        assert_eq!(delivered, 4, "the evicted backlog reroutes and arrives");
        assert_eq!(drops[0].dst, NodeId::new(1));
        // The freed slot is reusable.
        assert_eq!(net.free_slot_count(), net.msg_slot_count());
    }

    #[test]
    fn partitioning_failure_is_rolled_back() {
        let mut net = sim4x4();
        net.fail_link(NodeId::new(0), NodeId::new(1)).unwrap();
        net.fail_link(NodeId::new(0), NodeId::new(3)).unwrap();
        net.fail_link(NodeId::new(0), NodeId::new(4)).unwrap();
        // Node 0's last link: cutting it would strand it.
        let err = net.fail_link(NodeId::new(0), NodeId::new(12)).unwrap_err();
        assert!(matches!(err, FaultError::Partitioned { .. }));
        assert_eq!(net.dead_link_count(), 6, "rollback revives the last link");
        // The fabric must still route: node 0 only via node 12.
        net.send(
            net.now(),
            NodeId::new(0),
            NodeId::new(5),
            MessageClass::Request,
            16,
            7,
        );
        let d = net.drain_deliveries();
        assert_eq!(d.len(), 1);
        assert!(d[0].hops >= 3, "must detour through node 12");
    }

    #[test]
    fn fail_and_restore_roundtrip() {
        let mut net = sim4x4();
        assert_eq!(
            net.fail_link(NodeId::new(0), NodeId::new(10)),
            Err(FaultError::NoSuchLink {
                a: NodeId::new(0),
                b: NodeId::new(10)
            })
        );
        net.fail_link(NodeId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(
            net.fail_link(NodeId::new(0), NodeId::new(1)),
            Err(FaultError::AlreadyInState {
                a: NodeId::new(0),
                b: NodeId::new(1),
                alive: false
            })
        );
        net.restore_link(NodeId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(net.dead_link_count(), 0);
        assert_eq!(
            net.restore_link(NodeId::new(0), NodeId::new(1)),
            Err(FaultError::AlreadyInState {
                a: NodeId::new(0),
                b: NodeId::new(1),
                alive: true
            })
        );
        // Healed fabric routes minimally again.
        net.send(
            net.now(),
            NodeId::new(0),
            NodeId::new(1),
            MessageClass::Request,
            16,
            0,
        );
        let d = net.drain_deliveries();
        assert_eq!(d[0].hops, 1);
    }

    #[test]
    fn fault_plan_strikes_mid_run() {
        use alphasim_kernel::{FaultKind, FaultPlan};
        let mut net = sim4x4();
        let mut plan = FaultPlan::new();
        plan.push(
            SimTime::ZERO + SimDuration::from_ns(50.0),
            FaultKind::LinkDown { a: 0, b: 1 },
        );
        plan.push(
            SimTime::ZERO + SimDuration::from_ns(400.0),
            FaultKind::NodeDrain { node: 2 },
        );
        net.install_fault_plan(&plan);
        net.set_timer(SimTime::ZERO + SimDuration::from_ns(600.0), 99);
        for i in 0..10u64 {
            net.send(
                SimTime::from_ps(i * 10_000),
                NodeId::new(0),
                NodeId::new(1),
                MessageClass::Request,
                64,
                i,
            );
        }
        let mut faults = Vec::new();
        let mut timers = Vec::new();
        let mut delivered = 0;
        while let Some(step) = net.step() {
            match step {
                Step::Fault(k) => faults.push(k),
                Step::Timer(t) => timers.push(t),
                Step::Delivered(_) => delivered += 1,
                _ => {}
            }
        }
        assert_eq!(
            faults,
            vec![
                FaultKind::LinkDown { a: 0, b: 1 },
                FaultKind::NodeDrain { node: 2 }
            ]
        );
        assert_eq!(timers, vec![99]);
        assert_eq!(delivered, 10);
        assert!(net.is_drained(NodeId::new(2)));
        assert!(!net.is_drained(NodeId::new(0)));
        assert_eq!(
            net.dead_links(),
            vec![
                (NodeId::new(0), NodeId::new(1)),
                (NodeId::new(1), NodeId::new(0)),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "drained node")]
    fn sends_from_drained_nodes_are_rejected() {
        let mut net = sim4x4();
        net.drain_node(NodeId::new(3));
        net.send(
            SimTime::ZERO,
            NodeId::new(3),
            NodeId::new(0),
            MessageClass::Request,
            16,
            0,
        );
    }

    #[test]
    fn dead_links_are_excluded_from_gauges() {
        let mut net = sim4x4();
        for i in 0..50 {
            net.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(1),
                MessageClass::Request,
                64,
                i,
            );
        }
        net.drain();
        let before = net.node_ip_utilization(NodeId::new(0));
        net.fail_link(NodeId::new(0), NodeId::new(1)).unwrap();
        let after = net.node_ip_utilization(NodeId::new(0));
        assert!(
            after < before,
            "dead busy link must leave the gauge: {before} -> {after}"
        );
        let horiz = net.mean_utilization_where(|d| d.is_some_and(|d| d.is_horizontal()));
        assert!(horiz < before);
    }

    #[test]
    fn horizontal_vs_vertical_utilization_filter() {
        let mut net = sim4x4();
        // Traffic only along row 0.
        for i in 0..50 {
            net.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(2),
                MessageClass::Request,
                64,
                i,
            );
        }
        net.drain();
        let horiz = net.mean_utilization_where(|d| d.is_some_and(|d| d.is_horizontal()));
        let vert = net.mean_utilization_where(|d| d.is_some_and(|d| !d.is_horizontal()));
        assert!(horiz > vert, "horiz {horiz} vert {vert}");
        assert_eq!(vert, 0.0);
    }

    #[test]
    fn breakdown_sums_exactly_to_latency_under_congestion() {
        // Heavy contended traffic: every delivery's per-stage attribution
        // must sum to its end-to-end latency in integer picoseconds — the
        // identity the fig06 decomposition rests on.
        let mut net = sim4x4();
        let mut rng = DetRng::seeded(3);
        for i in 0..300u64 {
            let src = rng.index(16);
            let dst = rng.index_excluding(16, src);
            net.send(
                SimTime::from_ps(i * 500),
                NodeId::new(src),
                NodeId::new(dst),
                MessageClass::Request,
                64,
                i,
            );
        }
        let deliveries = net.drain_deliveries();
        assert_eq!(deliveries.len(), 300);
        let mut congested = 0;
        for d in &deliveries {
            assert_eq!(
                d.breakdown.total_ps(),
                d.latency().as_ps(),
                "stages must sum exactly for tag {}",
                d.tag
            );
            if d.breakdown.queued_ps > 0 || d.breakdown.congestion_ps > 0 {
                congested += 1;
            }
        }
        assert!(
            congested > 0,
            "the flood must exercise queue/congestion stages"
        );
    }

    #[test]
    fn self_send_breakdown_is_all_zero() {
        let mut net = sim4x4();
        net.send(
            SimTime::ZERO,
            NodeId::new(3),
            NodeId::new(3),
            MessageClass::Special,
            8,
            42,
        );
        let d = net.drain_deliveries();
        assert_eq!(d[0].breakdown, Default::default());
        assert_eq!(d[0].breakdown.total_ps(), 0);
    }

    #[test]
    fn breakdown_identity_survives_eviction_reroute() {
        // Cut a loaded link mid-run; evicted messages are re-routed, and the
        // time stranded on the dead link's queue must land in `queued_ps` so
        // the identity still holds exactly.
        let mut net = sim4x4();
        for i in 0..30 {
            net.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(1),
                MessageClass::Io,
                64,
                i,
            );
        }
        let mut steps = 0;
        let mut deliveries = Vec::new();
        while let Some(step) = net.step() {
            steps += 1;
            if steps == 5 {
                net.fail_link(NodeId::new(0), NodeId::new(1)).unwrap();
            }
            if let Step::Delivered(d) = step {
                deliveries.push(d);
            }
        }
        assert_eq!(deliveries.len(), 30);
        assert!(net.rerouted_count() > 0);
        for d in &deliveries {
            assert_eq!(d.breakdown.total_ps(), d.latency().as_ps(), "tag {}", d.tag);
        }
    }

    #[test]
    fn trace_records_message_and_link_lanes() {
        let mut net = sim4x4();
        assert!(!net.trace_enabled());
        net.enable_trace();
        assert!(net.trace_enabled());
        net.send(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(5),
            MessageClass::Request,
            16,
            7,
        );
        net.drain();
        let trace = net.take_trace().expect("sink was attached");
        assert!(!net.trace_enabled());
        // One lifetime event plus one occupancy event per hop (two hops).
        assert_eq!(trace.len(), 3);
        let body = trace.to_json_string();
        assert!(body.contains("\"Request\""), "{body}");
        assert!(body.contains("network: link occupancy"), "{body}");
        assert!(body.contains("\"tag\":7"), "{body}");
    }

    #[test]
    fn tracing_does_not_change_delivery_results() {
        let run = |traced: bool| {
            let mut net = sim4x4();
            if traced {
                net.enable_trace();
            }
            let mut rng = DetRng::seeded(5);
            for i in 0..100u64 {
                let src = rng.index(16);
                let dst = rng.index_excluding(16, src);
                net.send(
                    SimTime::from_ps(i * 800),
                    NodeId::new(src),
                    NodeId::new(dst),
                    MessageClass::Request,
                    32,
                    i,
                );
            }
            net.drain_deliveries()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn degraded_link_stretches_latency_and_sums_exactly() {
        // One hop, no contention: a degraded link multiplies the wire and
        // serialization terms by the stretch factor and nothing else, and
        // the breakdown identity holds through the slowdown.
        let timing = LinkTiming::ev7_torus();
        let healthy = {
            let mut net = sim4x4();
            net.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(1),
                MessageClass::Request,
                64,
                0,
            );
            net.drain_deliveries()[0].latency()
        };
        let mut net = sim4x4();
        net.degrade_link(NodeId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(net.degraded_link_count(), 2, "both directions slow down");
        net.send(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(1),
            MessageClass::Request,
            64,
            0,
        );
        let d = net.drain_deliveries();
        let stretch = alphasim_kernel::fault::DEGRADE_FACTOR;
        let expect =
            timing.router_latency + (healthy - timing.router_latency).saturating_mul(stretch);
        assert_eq!(d[0].latency(), expect);
        assert_eq!(d[0].breakdown.total_ps(), d[0].latency().as_ps());
        // Healing restores full speed without a topology rebuild.
        net.restore_link(NodeId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(net.degraded_link_count(), 0);
        net.send(
            net.now(),
            NodeId::new(0),
            NodeId::new(1),
            MessageClass::Request,
            64,
            1,
        );
        let d = net.drain_deliveries();
        assert_eq!(d[0].latency(), healthy);
    }

    #[test]
    fn degrade_errors_are_named() {
        let mut net = sim4x4();
        net.degrade_link(NodeId::new(0), NodeId::new(1)).unwrap();
        assert!(matches!(
            net.degrade_link(NodeId::new(0), NodeId::new(1)),
            Err(FaultError::BadState { .. })
        ));
        net.restore_link(NodeId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(
            net.restore_link(NodeId::new(0), NodeId::new(1)),
            Err(FaultError::AlreadyInState {
                a: NodeId::new(0),
                b: NodeId::new(1),
                alive: true
            })
        );
        net.fail_link(NodeId::new(0), NodeId::new(1)).unwrap();
        assert!(matches!(
            net.degrade_link(NodeId::new(0), NodeId::new(1)),
            Err(FaultError::BadState { .. })
        ));
        assert!(matches!(
            net.corrupt_next_flit(NodeId::new(0), NodeId::new(1)),
            Err(FaultError::BadState { .. })
        ));
    }

    #[test]
    fn crc_retransmit_costs_one_extra_transfer_and_flight() {
        // A corrupted flit is caught by CRC at the receiver and retransmitted
        // by the link layer: exactly one extra serialization plus one extra
        // wire flight on that hop, charged so the identity still balances.
        let healthy = {
            let mut net = sim4x4();
            net.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(1),
                MessageClass::Request,
                64,
                0,
            );
            net.drain_deliveries()[0].latency()
        };
        let timing = LinkTiming::ev7_torus();
        let mut net = sim4x4();
        net.corrupt_next_flit(NodeId::new(0), NodeId::new(1))
            .unwrap();
        net.send(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(1),
            MessageClass::Request,
            64,
            0,
        );
        let d = net.drain_deliveries();
        // Resend = transfer + wire = healthy minus the router pipeline.
        assert_eq!(d[0].latency(), healthy + (healthy - timing.router_latency));
        assert_eq!(d[0].breakdown.total_ps(), d[0].latency().as_ps());
        assert_eq!(net.crc_retransmit_count(), 1);
        // The transient fires once; the next flit flies clean.
        net.send(
            net.now(),
            NodeId::new(0),
            NodeId::new(1),
            MessageClass::Request,
            64,
            1,
        );
        let d = net.drain_deliveries();
        assert_eq!(d[0].latency(), healthy);
        assert_eq!(net.crc_retransmit_count(), 1);
    }

    #[test]
    fn router_pause_stalls_departures_until_the_window_lifts() {
        let mut net = sim4x4();
        let pause = SimDuration::from_ns(200.0);
        net.pause_router(NodeId::new(0), pause);
        net.send(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(1),
            MessageClass::Request,
            64,
            0,
        );
        let d = net.drain_deliveries();
        assert_eq!(d.len(), 1);
        assert!(
            d[0].delivered_at >= SimTime::ZERO + pause,
            "delivery at {} must wait out the pause",
            d[0].delivered_at
        );
        assert_eq!(d[0].breakdown.total_ps(), d[0].latency().as_ps());
    }

    #[test]
    fn pausing_a_busy_router_extends_its_occupancy() {
        // Pause struck mid-transfer: the in-flight message finishes, but the
        // channel's release re-arms to the pause end, stalling the queue
        // behind it. Everything still delivers and the identity holds.
        let mut net = sim4x4();
        for i in 0..10 {
            net.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(1),
                MessageClass::Request,
                64,
                i,
            );
        }
        let mut steps = 0;
        let mut deliveries = Vec::new();
        while let Some(step) = net.step() {
            steps += 1;
            if steps == 3 {
                net.pause_router(NodeId::new(0), SimDuration::from_us(1.0));
            }
            if let Step::Delivered(d) = step {
                deliveries.push(d);
            }
        }
        assert_eq!(deliveries.len(), 10);
        for d in &deliveries {
            assert_eq!(d.breakdown.total_ps(), d.latency().as_ps(), "tag {}", d.tag);
        }
        let last = deliveries.iter().map(|d| d.delivered_at).max().unwrap();
        assert!(
            last >= SimTime::ZERO + SimDuration::from_us(1.0),
            "the backlog must wait out the brownout"
        );
    }

    #[test]
    fn undrain_returns_a_node_to_service() {
        let mut net = sim4x4();
        net.drain_node(NodeId::new(3));
        assert!(net.is_drained(NodeId::new(3)));
        net.undrain_node(NodeId::new(3));
        assert!(!net.is_drained(NodeId::new(3)));
        // Undraining a healthy node is a no-op, not an error.
        net.undrain_node(NodeId::new(3));
        net.send(
            SimTime::ZERO,
            NodeId::new(3),
            NodeId::new(0),
            MessageClass::Request,
            16,
            0,
        );
        assert_eq!(net.drain_deliveries().len(), 1);
    }

    #[test]
    fn audits_pass_on_healthy_and_wounded_fabrics() {
        let mut net = sim4x4();
        net.audit_routes().unwrap();
        net.audit_lookahead().unwrap();
        net.fail_link(NodeId::new(0), NodeId::new(1)).unwrap();
        net.degrade_link(NodeId::new(2), NodeId::new(3)).unwrap();
        net.audit_routes().unwrap();
        net.audit_lookahead().unwrap();
    }
}
