//! The message-level network simulator.

use alphasim_kernel::{EventQueue, SimDuration, SimTime};
use alphasim_topology::route::{RoutePolicy, Routes};
use alphasim_topology::{NodeId, Topology};

use crate::link::Link;
use crate::msg::{Delivery, MessageClass, MessageId};
use crate::timing::LinkTiming;

/// What one [`NetworkSim::step`] produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Step {
    /// A message reached its destination.
    Delivered(Delivery),
    /// An internal event (a hop, a link becoming free) was processed.
    Internal,
}

#[derive(Debug)]
struct MsgState {
    src: NodeId,
    dst: NodeId,
    class: MessageClass,
    bytes: u64,
    tag: u64,
    injected_at: SimTime,
    hops: u32,
    serialized: bool,
}

#[derive(Debug)]
enum Event {
    Arrive { msg: MessageId, node: NodeId },
    LinkFree { link: usize },
}

/// A discrete-event, message-level simulator of one fabric.
///
/// Fidelity choices (see DESIGN.md):
///
/// * **Routing** is minimal adaptive: at each hop a packet picks the
///   minimal-path output with the smallest backlog (the Adaptive channel);
///   I/O packets route deterministically, as in the 21364.
/// * **Virtual channels** appear as per-class FIFO queues per link with
///   strict priority arbitration, so responses never block behind requests.
///   Deadlock freedom of the escape network is *proved* separately
///   (`alphasim_topology::route::escape_network_is_acyclic`) rather than
///   re-enacted flit by flit; queues here are unbounded, with a calibrated
///   arbitration penalty per queued packet standing in for head-of-line
///   blocking — this is what bends Fig. 15's delivered bandwidth back past
///   saturation.
/// * **Wormhole pipelining**: a message pays its serialization latency once
///   (at injection) and router+wire latency per hop, while *occupying* each
///   traversed link for its full transfer time.
///
/// # Examples
///
/// ```
/// use alphasim_net::{NetworkSim, MessageClass, Step};
/// use alphasim_topology::{Torus2D, NodeId};
/// use alphasim_kernel::SimTime;
///
/// let mut net = NetworkSim::new(Torus2D::new(4, 4), alphasim_net::LinkTiming::ev7_torus());
/// net.send(SimTime::ZERO, NodeId::new(0), NodeId::new(5), MessageClass::Request, 16, 7);
/// let mut delivered = 0;
/// while let Some(step) = net.step() {
///     if let Step::Delivered(d) = step {
///         assert_eq!(d.tag, 7);
///         delivered += 1;
///     }
/// }
/// assert_eq!(delivered, 1);
/// ```
#[derive(Debug)]
pub struct NetworkSim<T: Topology> {
    topo: T,
    routes: Routes,
    timing: LinkTiming,
    links: Vec<Link>,
    /// node index → port index → link id.
    link_of: Vec<Vec<usize>>,
    events: EventQueue<Event>,
    msgs: Vec<MsgState>,
    /// Slots in `msgs` whose message has been delivered, ready for reuse.
    /// A delivered [`MessageId`] is never dereferenced again (deliveries
    /// copy every field out, and link queues only hold in-flight ids), so
    /// recycling keeps `msgs` sized to the *in-flight* population instead of
    /// growing with every message ever sent.
    free: Vec<u32>,
    delivered: u64,
}

impl<T: Topology> NetworkSim<T> {
    /// A simulator over `topo` with minimal adaptive routing.
    pub fn new(topo: T, timing: LinkTiming) -> Self {
        Self::with_policy(topo, timing, RoutePolicy::Minimal)
    }

    /// A simulator with an explicit shuffle-link policy (Fig. 18).
    pub fn with_policy(topo: T, timing: LinkTiming, policy: RoutePolicy) -> Self {
        let routes = Routes::compute(&topo, policy);
        let mut links = Vec::new();
        let mut link_of = Vec::with_capacity(topo.node_count());
        for n in 0..topo.node_count() {
            let node = NodeId::new(n);
            let mut ids = Vec::new();
            for p in topo.ports(node) {
                ids.push(links.len());
                links.push(Link::new(node, p.to, p.class, p.dir));
            }
            link_of.push(ids);
        }
        NetworkSim {
            topo,
            routes,
            timing,
            links,
            link_of,
            events: EventQueue::new(),
            msgs: Vec::new(),
            free: Vec::new(),
            delivered: 0,
        }
    }

    /// The simulated topology.
    pub fn topology(&self) -> &T {
        &self.topo
    }

    /// The timing parameters in force.
    pub fn timing(&self) -> &LinkTiming {
        &self.timing
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Message slots currently allocated (the high-water mark of messages
    /// simultaneously in flight, not the total ever sent — delivered slots
    /// are recycled through a free list).
    pub fn msg_slot_count(&self) -> usize {
        self.msgs.len()
    }

    /// Of the allocated slots, how many are free for reuse right now.
    pub fn free_slot_count(&self) -> usize {
        self.free.len()
    }

    /// Inject a message at time `at` (which must not be in the past).
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`now`](Self::now), or if `src`/`dst`
    /// are out of range.
    pub fn send(
        &mut self,
        at: SimTime,
        src: NodeId,
        dst: NodeId,
        class: MessageClass,
        bytes: u64,
        tag: u64,
    ) -> MessageId {
        assert!(src.index() < self.topo.node_count(), "bad source");
        assert!(dst.index() < self.topo.node_count(), "bad destination");
        let state = MsgState {
            src,
            dst,
            class,
            bytes,
            tag,
            injected_at: at,
            hops: 0,
            serialized: false,
        };
        let id = if let Some(slot) = self.free.pop() {
            self.msgs[slot as usize] = state;
            MessageId(slot)
        } else {
            let id = MessageId(u32::try_from(self.msgs.len()).expect("too many messages"));
            self.msgs.push(state);
            id
        };
        self.events
            .schedule(at, Event::Arrive { msg: id, node: src });
        id
    }

    /// Process one event. `None` when the network is drained.
    pub fn step(&mut self) -> Option<Step> {
        let (now, event) = self.events.pop()?;
        match event {
            Event::Arrive { msg, node } => {
                if node == self.msgs[msg.index()].dst {
                    self.delivered += 1;
                    let m = &self.msgs[msg.index()];
                    let delivery = Delivery {
                        id: msg,
                        src: m.src,
                        dst: m.dst,
                        class: m.class,
                        bytes: m.bytes,
                        tag: m.tag,
                        injected_at: m.injected_at,
                        delivered_at: now,
                        hops: m.hops,
                    };
                    self.free.push(msg.0);
                    return Some(Step::Delivered(delivery));
                }
                let link_id = self.choose_output(msg, node);
                let class = self.msgs[msg.index()].class;
                self.links[link_id].enqueue(class, msg);
                if !self.links[link_id].is_busy() {
                    self.start_transfer(link_id, now);
                }
                Some(Step::Internal)
            }
            Event::LinkFree { link } => {
                self.links[link].release();
                if self.links[link].backlog() > 0 {
                    self.start_transfer(link, now);
                }
                Some(Step::Internal)
            }
        }
    }

    /// Run until no events remain, discarding deliveries.
    pub fn drain(&mut self) {
        while self.step().is_some() {}
    }

    /// Run until no events remain, collecting deliveries.
    pub fn drain_deliveries(&mut self) -> Vec<Delivery> {
        let mut out = Vec::new();
        while let Some(step) = self.step() {
            if let Step::Delivered(d) = step {
                out.push(d);
            }
        }
        out
    }

    /// Pick the output link for `msg` at `node`: minimal adaptive for
    /// coherence classes, deterministic (first minimal port) for I/O.
    fn choose_output(&self, msg: MessageId, node: NodeId) -> usize {
        let m = &self.msgs[msg.index()];
        let candidates = self.routes.minimal_ports(&self.topo, node, m.hops, m.dst);
        debug_assert!(!candidates.is_empty(), "routing dead end");
        let chosen = if m.class.may_route_adaptively() {
            *candidates
                .iter()
                .min_by_key(|&&pi| {
                    let link = &self.links[self.link_of[node.index()][pi]];
                    (link.backlog() + usize::from(link.is_busy()), pi)
                })
                .expect("non-empty candidates")
        } else {
            candidates[0]
        };
        self.link_of[node.index()][chosen]
    }

    /// Grant the head-of-queue packet on `link_id` and schedule its arrival
    /// and the link's next availability.
    fn start_transfer(&mut self, link_id: usize, now: SimTime) {
        let Some(msg) = self.links[link_id].grant() else {
            return;
        };
        let m = &mut self.msgs[msg.index()];
        let transfer = SimDuration::transfer_time(m.bytes, self.timing.bandwidth_gbps);
        let backlog = self.links[link_id].backlog() as u32;
        let penalty = SimDuration::from_ns(
            f64::from(backlog.min(self.timing.congestion_cap))
                * self.timing.congestion_ns_per_queued,
        );
        let serialization = if m.serialized {
            SimDuration::ZERO
        } else {
            m.serialized = true;
            transfer
        };
        let wire = self.timing.wire(self.links[link_id].class);
        let occupancy = transfer + penalty;
        m.hops += 1;
        let to = self.links[link_id].to;
        let (class, bytes) = (m.class, m.bytes);
        self.links[link_id].account(class, bytes, occupancy);
        self.events.schedule(
            now + self.timing.router_latency + wire + serialization + penalty,
            Event::Arrive { msg, node: to },
        );
        self.events
            .schedule(now + occupancy, Event::LinkFree { link: link_id });
    }

    /// The zero-load latency of a `bytes`-sized message over `hops` hops of
    /// `class`-class links (analytic; used to calibrate and to test the
    /// simulator against itself).
    pub fn unloaded_latency(
        &self,
        hops: &[alphasim_topology::LinkClass],
        bytes: u64,
    ) -> SimDuration {
        let mut total = SimDuration::transfer_time(bytes, self.timing.bandwidth_gbps);
        for &class in hops {
            total += self.timing.router_latency + self.timing.wire(class);
        }
        total
    }

    /// Per-link statistics: `(from, to, direction, utilization, bytes)`.
    pub fn link_stats(
        &self,
    ) -> impl Iterator<
        Item = (
            NodeId,
            NodeId,
            Option<alphasim_topology::Direction>,
            f64,
            u64,
        ),
    > + '_ {
        let now = self.now();
        self.links
            .iter()
            .map(move |l| (l.from, l.to, l.dir, l.utilization(now), l.bytes()))
    }

    /// Mean utilization of links whose direction satisfies `pred`
    /// (e.g. horizontal for the GUPS East/West analysis, Fig. 24).
    pub fn mean_utilization_where(
        &self,
        pred: impl Fn(Option<alphasim_topology::Direction>) -> bool,
    ) -> f64 {
        let now = self.now();
        let (sum, n) = self
            .links
            .iter()
            .filter(|l| pred(l.dir))
            .fold((0.0, 0usize), |(s, n), l| (s + l.utilization(now), n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Total bytes delivered onto links of the whole fabric.
    pub fn total_link_bytes(&self) -> u64 {
        self.links.iter().map(Link::bytes).sum()
    }

    /// Total packet grants across all output arbiters (each hop of each
    /// message is one grant).
    pub fn total_grants(&self) -> u64 {
        self.links.iter().map(Link::granted).sum()
    }

    /// Fabric bytes moved per message class — the protocol-traffic
    /// breakdown (data responses dominate coherence traffic).
    pub fn class_byte_totals(&self) -> [(MessageClass, u64); 5] {
        MessageClass::ALL.map(|c| (c, self.links.iter().map(|l| l.class_bytes(c)).sum()))
    }

    /// Mean cumulative busy time of one node's outgoing links, for interval
    /// sampling of its IP-link gauge.
    pub fn node_ip_busy(&self, node: NodeId) -> SimDuration {
        let ids = &self.link_of[node.index()];
        if ids.is_empty() {
            return SimDuration::ZERO;
        }
        let total: SimDuration = ids.iter().map(|&i| self.links[i].busy_time()).sum();
        total / ids.len() as u64
    }

    /// Mean cumulative busy time over links whose direction satisfies
    /// `pred`, for interval sampling (e.g. East/West vs North/South).
    pub fn mean_busy_where(
        &self,
        pred: impl Fn(Option<alphasim_topology::Direction>) -> bool,
    ) -> SimDuration {
        let (sum, n) = self
            .links
            .iter()
            .filter(|l| pred(l.dir))
            .fold((SimDuration::ZERO, 0u64), |(s, n), l| {
                (s + l.busy_time(), n + 1)
            });
        if n == 0 {
            SimDuration::ZERO
        } else {
            sum / n
        }
    }

    /// Outgoing-link utilizations of one node, averaged (Xmesh's per-node
    /// IP-link gauge).
    pub fn node_ip_utilization(&self, node: NodeId) -> f64 {
        let now = self.now();
        let ids = &self.link_of[node.index()];
        if ids.is_empty() {
            return 0.0;
        }
        ids.iter()
            .map(|&i| self.links[i].utilization(now))
            .sum::<f64>()
            / ids.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasim_kernel::DetRng;
    use alphasim_topology::{LinkClass, Torus2D};

    fn sim4x4() -> NetworkSim<Torus2D> {
        NetworkSim::new(Torus2D::new(4, 4), LinkTiming::ev7_torus())
    }

    #[test]
    fn single_message_latency_is_analytic() {
        let mut net = sim4x4();
        // 0 -> 1 is one Board hop East.
        net.send(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(1),
            MessageClass::Request,
            16,
            0,
        );
        let d = net.drain_deliveries();
        assert_eq!(d.len(), 1);
        let expect = net.unloaded_latency(&[LinkClass::Board], 16);
        assert_eq!(d[0].latency(), expect);
        assert_eq!(d[0].hops, 1);
    }

    #[test]
    fn self_send_is_immediate() {
        let mut net = sim4x4();
        net.send(
            SimTime::ZERO,
            NodeId::new(3),
            NodeId::new(3),
            MessageClass::Special,
            8,
            42,
        );
        let d = net.drain_deliveries();
        assert_eq!(d[0].hops, 0);
        assert_eq!(d[0].latency(), SimDuration::ZERO);
    }

    #[test]
    fn all_messages_are_delivered() {
        // Conservation under random all-to-all traffic.
        let mut net = sim4x4();
        let mut rng = DetRng::seeded(11);
        let n = 16;
        let mut sent = 0;
        for i in 0..500u64 {
            let src = rng.index(n);
            let dst = rng.index_excluding(n, src);
            let at = SimTime::from_ps(i * 1000);
            net.send(
                at,
                NodeId::new(src),
                NodeId::new(dst),
                MessageClass::Request,
                16,
                i,
            );
            sent += 1;
        }
        let d = net.drain_deliveries();
        assert_eq!(d.len(), sent);
        // Tags unique => no duplication.
        let mut tags: Vec<u64> = d.iter().map(|x| x.tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), sent);
    }

    #[test]
    fn hops_match_torus_distance() {
        let mut net = sim4x4();
        let t = net.topology().clone();
        for dst in 1..16 {
            net.send(
                net.now(),
                NodeId::new(0),
                NodeId::new(dst),
                MessageClass::Request,
                16,
                dst as u64,
            );
        }
        for d in net.drain_deliveries() {
            assert_eq!(
                d.hops,
                t.hop_distance(d.src, d.dst) as u32,
                "{} -> {}",
                d.src,
                d.dst
            );
        }
    }

    #[test]
    fn responses_overtake_queued_requests() {
        let mut net = sim4x4();
        // Flood one link with requests, then send a response; the response
        // must be granted at the first arbitration after it arrives.
        for i in 0..10 {
            net.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(1),
                MessageClass::Request,
                64,
                i,
            );
        }
        net.send(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(1),
            MessageClass::BlockResponse,
            64,
            999,
        );
        let d = net.drain_deliveries();
        let response_pos = d.iter().position(|x| x.tag == 999).unwrap();
        assert!(
            response_pos <= 1,
            "response delivered {response_pos} deep despite priority VCs"
        );
    }

    #[test]
    fn adaptive_routing_uses_both_minimal_paths() {
        let mut net = sim4x4();
        // 0 -> 5 has minimal first hops East (to 1) and South (to 4).
        for i in 0..20 {
            net.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(5),
                MessageClass::Request,
                64,
                i,
            );
        }
        net.drain();
        let east: u64 = net
            .link_stats()
            .filter(|&(f, t, _, _, _)| f == NodeId::new(0) && t == NodeId::new(1))
            .map(|(_, _, _, _, b)| b)
            .sum();
        let south: u64 = net
            .link_stats()
            .filter(|&(f, t, _, _, _)| f == NodeId::new(0) && t == NodeId::new(4))
            .map(|(_, _, _, _, b)| b)
            .sum();
        assert!(east > 0 && south > 0, "east={east} south={south}");
        // Near-even split under symmetric load.
        let ratio = east as f64 / south as f64;
        assert!((0.5..=2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn io_routes_deterministically() {
        let mut net = sim4x4();
        for i in 0..20 {
            net.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(5),
                MessageClass::Io,
                64,
                i,
            );
        }
        net.drain();
        let used: Vec<(NodeId, u64)> = net
            .link_stats()
            .filter(|&(f, _, _, _, b)| f == NodeId::new(0) && b > 0)
            .map(|(_, t, _, _, b)| (t, b))
            .collect();
        assert_eq!(used.len(), 1, "I/O must not spread: {used:?}");
    }

    #[test]
    fn congestion_raises_latency() {
        let light = {
            let mut net = sim4x4();
            net.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(2),
                MessageClass::Request,
                64,
                0,
            );
            net.drain_deliveries()[0].latency()
        };
        let heavy = {
            let mut net = sim4x4();
            for i in 0..200 {
                net.send(
                    SimTime::ZERO,
                    NodeId::new(0),
                    NodeId::new(2),
                    MessageClass::Request,
                    64,
                    i,
                );
            }
            let d = net.drain_deliveries();
            d.iter().map(|x| x.latency()).max().unwrap()
        };
        assert!(
            heavy > light * 20,
            "queueing should dominate: {light} vs {heavy}"
        );
    }

    #[test]
    fn link_utilization_bounded_and_positive() {
        let mut net = sim4x4();
        for i in 0..100 {
            net.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(1),
                MessageClass::Request,
                64,
                i,
            );
        }
        net.drain();
        for (_, _, _, u, _) in net.link_stats() {
            assert!((0.0..=1.0).contains(&u));
        }
        assert!(net.node_ip_utilization(NodeId::new(0)) > 0.0);
        assert!(net.total_link_bytes() >= 100 * 64);
        assert_eq!(net.delivered_count(), 100);
    }

    #[test]
    fn msg_slots_bounded_by_in_flight_population() {
        // Regression test for the message free list: send 20 waves of 50
        // messages, draining between waves. Live slot capacity must track the
        // in-flight high-water mark (≤ one wave), not the 1000 total sent.
        let mut net = sim4x4();
        let mut rng = DetRng::seeded(7);
        for wave in 0..20u64 {
            for i in 0..50u64 {
                let src = rng.index(16);
                let dst = rng.index_excluding(16, src);
                net.send(
                    net.now(),
                    NodeId::new(src),
                    NodeId::new(dst),
                    MessageClass::Request,
                    16,
                    wave * 50 + i,
                );
            }
            net.drain();
        }
        assert_eq!(net.delivered_count(), 1000);
        assert!(
            net.msg_slot_count() <= 50,
            "slot table grew past one wave: {}",
            net.msg_slot_count()
        );
        // Everything is delivered, so every allocated slot is reusable.
        assert_eq!(net.free_slot_count(), net.msg_slot_count());
    }

    #[test]
    fn recycled_ids_deliver_with_correct_payloads() {
        // After a slot is recycled its new message must carry its own
        // src/dst/tag, not the previous occupant's.
        let mut net = sim4x4();
        net.send(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(1),
            MessageClass::Request,
            16,
            1,
        );
        let first = net.drain_deliveries();
        assert_eq!(first[0].tag, 1);
        let at = net.now();
        let id = net.send(
            at,
            NodeId::new(2),
            NodeId::new(7),
            MessageClass::Forward,
            32,
            2,
        );
        assert_eq!(id, first[0].id, "slot was recycled");
        let second = net.drain_deliveries();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].tag, 2);
        assert_eq!(second[0].src, NodeId::new(2));
        assert_eq!(second[0].dst, NodeId::new(7));
        assert_eq!(second[0].bytes, 32);
    }

    #[test]
    fn horizontal_vs_vertical_utilization_filter() {
        let mut net = sim4x4();
        // Traffic only along row 0.
        for i in 0..50 {
            net.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(2),
                MessageClass::Request,
                64,
                i,
            );
        }
        net.drain();
        let horiz = net.mean_utilization_where(|d| d.is_some_and(|d| d.is_horizontal()));
        let vert = net.mean_utilization_where(|d| d.is_some_and(|d| !d.is_horizontal()));
        assert!(horiz > vert, "horiz {horiz} vert {vert}");
        assert_eq!(vert, 0.0);
    }
}
