//! A directed physical link with per-class virtual-channel queues.

use alphasim_kernel::stats::UtilizationMeter;
use alphasim_kernel::{SimDuration, SimTime};
use alphasim_topology::{Direction, LinkClass, NodeId};

use crate::msg::{MessageClass, MessageId};

/// A directed link: per-class FIFO queues (the virtual channels) in front of
/// one serializing physical channel. The output ("global") arbiter grants
/// the highest-priority non-empty class first, so responses drain ahead of
/// requests exactly as the 21364's class VCs guarantee.
#[derive(Debug)]
pub struct Link {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Physical class (selects wire latency).
    pub class: LinkClass,
    /// Compass direction for torus links.
    pub dir: Option<Direction>,
    /// Per-class FIFO queues, indexed by `MessageClass::priority()`.
    queues: [std::collections::VecDeque<MessageId>; 5],
    /// Whether the physical channel is mid-transfer.
    busy: bool,
    /// Whether the physical channel is up (live fault injection downs it).
    alive: bool,
    /// The message currently occupying the channel, if any.
    in_flight: Option<MessageId>,
    meter: UtilizationMeter,
    granted: u64,
    /// Bytes moved per message class, indexed by `MessageClass::priority()`.
    class_bytes: [u64; 5],
    /// Latency stretch for a degraded (slowed, not dead) channel; `1` when
    /// healthy. Wire flight and serialization multiply by this.
    degrade: u64,
    /// Router pause/brownout: the channel may not start (or finish
    /// releasing) a transfer before this instant. `SimTime::ZERO` when
    /// healthy.
    pause_until: SimTime,
    /// Transient fault: the next granted flit is corrupted in flight, CRC
    /// caught at the receiver, and retransmitted by the link layer.
    corrupt_next: bool,
    /// CRC-detected corruptions retransmitted on this channel so far.
    crc_retransmits: u64,
}

impl Link {
    /// An idle link.
    pub fn new(from: NodeId, to: NodeId, class: LinkClass, dir: Option<Direction>) -> Self {
        Link {
            from,
            to,
            class,
            dir,
            queues: Default::default(),
            busy: false,
            alive: true,
            in_flight: None,
            meter: UtilizationMeter::new(),
            granted: 0,
            class_bytes: [0; 5],
            degrade: 1,
            pause_until: SimTime::ZERO,
            corrupt_next: false,
            crc_retransmits: 0,
        }
    }

    /// Queue a message on its class VC.
    pub fn enqueue(&mut self, class: MessageClass, id: MessageId) {
        self.queues[class.priority() as usize].push_back(id);
    }

    /// Total packets waiting across all VCs (the backlog adaptive routing
    /// compares).
    pub fn backlog(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Whether the physical channel is mid-transfer.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Global arbitration: pop the head of the highest-priority non-empty
    /// VC and mark the channel busy. Returns `None` if nothing waits.
    pub fn grant(&mut self) -> Option<MessageId> {
        debug_assert!(!self.busy, "grant on a busy link");
        for q in self.queues.iter_mut().rev() {
            if let Some(id) = q.pop_front() {
                self.busy = true;
                self.in_flight = Some(id);
                self.granted += 1;
                return Some(id);
            }
        }
        None
    }

    /// Whether the physical channel is up.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Mark the channel up or down (live fault injection).
    pub fn set_alive(&mut self, alive: bool) {
        self.alive = alive;
    }

    /// The message currently occupying the channel, if any.
    pub fn in_flight(&self) -> Option<MessageId> {
        self.in_flight
    }

    /// Empty every VC queue, returning the evicted messages highest
    /// priority first (FIFO within a class) so a failing link's backlog can
    /// be re-routed deterministically. The in-flight message, if any, is
    /// not touched.
    pub fn drain_queued(&mut self) -> Vec<MessageId> {
        let mut out = Vec::new();
        for q in self.queues.iter_mut().rev() {
            out.extend(q.drain(..));
        }
        out
    }

    /// Account a transfer of `bytes` of `class` occupying the channel for
    /// `occupancy`.
    pub fn account(&mut self, class: MessageClass, bytes: u64, occupancy: SimDuration) {
        self.meter.add_bytes(bytes);
        self.meter.add_busy(occupancy);
        self.class_bytes[class.priority() as usize] += bytes;
    }

    /// Mark the channel idle again.
    pub fn release(&mut self) {
        debug_assert!(self.busy, "release on an idle link");
        self.busy = false;
        self.in_flight = None;
    }

    /// Fraction of `[0, now]` the channel spent transferring.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.meter.utilization(now)
    }

    /// Cumulative busy (transfer) time, for interval sampling.
    pub fn busy_time(&self) -> SimDuration {
        self.meter.busy()
    }

    /// Bytes moved so far.
    pub fn bytes(&self) -> u64 {
        self.meter.bytes()
    }

    /// Packets granted so far.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Bytes moved for one message class.
    pub fn class_bytes(&self, class: MessageClass) -> u64 {
        self.class_bytes[class.priority() as usize]
    }

    /// Latency stretch factor; `1` for a healthy channel.
    pub fn degrade_factor(&self) -> u64 {
        self.degrade
    }

    /// Whether the channel is degraded (slowed, not dead).
    pub fn is_degraded(&self) -> bool {
        self.degrade > 1
    }

    /// Set the latency stretch factor (`1` restores full speed).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn set_degrade(&mut self, factor: u64) {
        assert!(factor >= 1, "degrade factor must be at least 1");
        self.degrade = factor;
    }

    /// The instant a router pause on this channel lifts (`SimTime::ZERO`
    /// when not paused).
    pub fn pause_until(&self) -> SimTime {
        self.pause_until
    }

    /// Extend the channel's pause window to at least `until`. Returns `true`
    /// if the channel was idle and the caller must both treat it as busy and
    /// schedule the release at `until` (a paused idle channel behaves like a
    /// transfer with no message).
    pub fn pause(&mut self, until: SimTime) -> bool {
        self.pause_until = self.pause_until.max(until);
        if self.busy {
            false
        } else {
            self.busy = true;
            true
        }
    }

    /// Arm a transient: the next granted flit is corrupted and must be
    /// retransmitted after CRC detection.
    pub fn arm_corruption(&mut self) {
        self.corrupt_next = true;
    }

    /// Consume the armed corruption, if any, counting the retransmit.
    pub fn take_corruption(&mut self) -> bool {
        if self.corrupt_next {
            self.corrupt_next = false;
            self.crc_retransmits += 1;
            true
        } else {
            false
        }
    }

    /// CRC-detected corruptions retransmitted on this channel so far.
    pub fn crc_retransmits(&self) -> u64 {
        self.crc_retransmits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        Link::new(NodeId::new(0), NodeId::new(1), LinkClass::Board, None)
    }

    #[test]
    fn grants_follow_class_priority() {
        let mut l = link();
        l.enqueue(MessageClass::Request, MessageId(1));
        l.enqueue(MessageClass::BlockResponse, MessageId(2));
        l.enqueue(MessageClass::Request, MessageId(3));
        assert_eq!(l.grant(), Some(MessageId(2)), "response drains first");
        l.release();
        assert_eq!(l.grant(), Some(MessageId(1)));
        l.release();
        assert_eq!(l.grant(), Some(MessageId(3)));
        l.release();
        assert_eq!(l.grant(), None);
    }

    #[test]
    fn fifo_within_a_class() {
        let mut l = link();
        for i in 0..5 {
            l.enqueue(MessageClass::Forward, MessageId(i));
        }
        for i in 0..5 {
            assert_eq!(l.grant(), Some(MessageId(i)));
            l.release();
        }
    }

    #[test]
    fn backlog_counts_all_classes() {
        let mut l = link();
        l.enqueue(MessageClass::Io, MessageId(0));
        l.enqueue(MessageClass::Special, MessageId(1));
        assert_eq!(l.backlog(), 2);
        l.grant();
        assert_eq!(l.backlog(), 1);
    }

    #[test]
    fn utilization_accounting() {
        let mut l = link();
        l.enqueue(MessageClass::Request, MessageId(0));
        l.grant();
        l.account(MessageClass::Request, 64, SimDuration::from_ns(20.0));
        l.release();
        assert!(!l.is_busy());
        assert_eq!(l.bytes(), 64);
        assert_eq!(l.granted(), 1);
        let now = SimTime::ZERO + SimDuration::from_ns(40.0);
        assert!((l.utilization(now) - 0.5).abs() < 1e-12);
        assert_eq!(l.class_bytes(MessageClass::Request), 64);
        assert_eq!(l.class_bytes(MessageClass::BlockResponse), 0);
    }

    #[test]
    fn degrade_and_heal() {
        let mut l = link();
        assert_eq!(l.degrade_factor(), 1);
        assert!(!l.is_degraded());
        l.set_degrade(4);
        assert!(l.is_degraded());
        l.set_degrade(1);
        assert!(!l.is_degraded());
    }

    #[test]
    fn pause_marks_idle_channel_busy_once() {
        let mut l = link();
        let until = SimTime::ZERO + SimDuration::from_ns(100.0);
        assert!(l.pause(until), "idle channel needs a scheduled release");
        assert!(l.is_busy());
        // Extending an already-paused (busy) channel must not double-book.
        let later = SimTime::ZERO + SimDuration::from_ns(200.0);
        assert!(!l.pause(later));
        assert_eq!(l.pause_until(), later);
        l.release();
        assert!(!l.is_busy());
    }

    #[test]
    fn corruption_fires_once() {
        let mut l = link();
        assert!(!l.take_corruption());
        l.arm_corruption();
        assert!(l.take_corruption());
        assert!(!l.take_corruption(), "transient must not repeat");
        assert_eq!(l.crc_retransmits(), 1);
    }
}
