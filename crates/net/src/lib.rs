//! The 21364 interconnect, as a discrete-event, message-level simulator.
//!
//! Paper §2 describes the router: four compass links to torus neighbors,
//! two-level arbitration (per-input local arbiters nominating packets to
//! per-output global arbiters), virtual channels per coherence class so a
//! Response can never block behind a Request, VC0/VC1 dateline channels and
//! dimension-order escape routing against torus deadlocks, and an Adaptive
//! channel giving minimal adaptive routing.
//!
//! [`NetworkSim`] reproduces this at message granularity: per-class VC
//! queues with strict-priority output arbitration, minimal adaptive output
//! selection by backlog, wormhole-style latency accounting, and calibrated
//! congestion penalties (see `DESIGN.md` for the fidelity argument). The
//! deadlock-freedom construction itself is checked as a graph property in
//! [`alphasim_topology::route`].
//!
//! # Examples
//!
//! ```
//! use alphasim_net::{NetworkSim, LinkTiming, MessageClass, Step};
//! use alphasim_topology::{Torus2D, NodeId};
//! use alphasim_kernel::SimTime;
//!
//! let mut net = NetworkSim::new(Torus2D::for_cpus(16), LinkTiming::ev7_torus());
//! net.send(SimTime::ZERO, NodeId::new(0), NodeId::new(10),
//!          MessageClass::Request, 16, 0);
//! let deliveries = net.drain_deliveries();
//! assert_eq!(deliveries.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod arbiter;
pub mod link;
mod msg;
pub mod partition;
pub mod region;
mod sim;
mod timing;

pub use msg::{Delivery, DroppedMsg, MessageClass, MessageId};
pub use sim::{FaultError, NetworkSim, Step};
pub use timing::LinkTiming;
