//! Region-partitioned fabric state for epoch-parallel closed-loop
//! simulation.
//!
//! [`crate::NetworkSim`] steps one global interleaved event loop; this
//! module splits the same physical model into per-region slices so the
//! conservative epoch engine ([`alphasim_kernel::shard::EpochExecutor`])
//! can advance each torus row band on its own core:
//!
//! * [`FabricTables`] is the **shared, immutable** routing snapshot —
//!   topology, route tables over the live fabric, link liveness, drain
//!   flags, and the [`RegionMap`]. Workers hold it behind an [`Arc`]; only
//!   the barrier coordinator mutates its master copy (fault strikes) and
//!   republishes. Between barriers the snapshot is constant, which is what
//!   makes per-region routing decisions safe without locks.
//! * [`RegionNet`] is one region's **owned, mutable** slice: the [`Link`]
//!   state (queues, occupancy, degradation, pauses) of every directed link
//!   whose *sending* node the region owns, plus the packets queued on
//!   them. A packet in flight between hops lives inside its pending
//!   `Arrive` event, not in any region — hop handoff is event handoff.
//!
//! The hop arithmetic here mirrors `NetworkSim`'s exactly (grant, degrade
//! stretch, CRC retransmit, congestion penalty, serialization-once), so
//! the partitioned engine reproduces the same physics; determinism across
//! shard counts follows because every event touches only its own node's
//! links and every simultaneous pair of events is ordered by a
//! shard-count-invariant tiebreak (see the `tb_*` constructors).

use std::sync::Arc;

use alphasim_kernel::{SimDuration, SimTime};
use alphasim_telemetry::trace::{PID_LINKS, PID_MESSAGES};
use alphasim_telemetry::{HopBreakdown, Timeline, TraceSink};
use alphasim_topology::route::{RoutePolicy, Routes};
use alphasim_topology::{Coord, Direction, LinkClass, NodeId, Port, Topology};

use crate::link::Link;
use crate::msg::{MessageClass, MessageId};
use crate::region::RegionMap;
use crate::sim::FaultError;
use crate::timing::LinkTiming;

/// Tiebreak kind tag for packet `Arrive` events (low bits: packet uid).
pub fn tb_arrive(uid: u64) -> u64 {
    debug_assert!(uid < 1 << 61, "packet uid overflows the tiebreak");
    (1 << 61) | uid
}

/// Tiebreak kind tag for `LinkFree` events (low bits: global link id).
pub fn tb_link_free(link: usize) -> u64 {
    (2 << 61) | link as u64
}

/// Tiebreak kind tag for coherence timer events (low bits: transaction
/// tag).
pub fn tb_timer(tag: u64) -> u64 {
    debug_assert!(tag < 1 << 61, "timer tag overflows the tiebreak");
    (3 << 61) | tag
}

/// Tiebreak kind tag for window-refill injection events (low bits: cpu
/// index).
pub fn tb_inject(cpu: usize) -> u64 {
    (4 << 61) | cpu as u64
}

/// A message travelling the partitioned fabric. Unlike `NetworkSim`'s
/// slab-resident `MsgState`, a `Packet` is an owned value: queued packets
/// live in their sending region's slab, in-flight packets live inside
/// their pending `Arrive` event, and the closed-loop payload `P` (e.g. the
/// served-request telemetry leg a response carries home) rides along.
#[derive(Debug, Clone)]
pub struct Packet<P> {
    /// Injecting node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Virtual-channel class.
    pub class: MessageClass,
    /// Payload size.
    pub bytes: u64,
    /// Caller correlation tag (the coherence transaction id).
    pub tag: u64,
    /// Shard-count-invariant identity; also the low bits of the packet's
    /// `Arrive` tiebreak. Derived from simulation identities (tag, attempt,
    /// direction), never from slots or arrival order.
    pub uid: u64,
    /// When the packet entered the fabric.
    pub injected_at: SimTime,
    /// Hops taken so far (also the routing progress index).
    pub hops: u32,
    /// Whether the serialization latency has been paid (first hop only).
    pub serialized: bool,
    /// When the packet joined its current output queue.
    pub enqueued_at: SimTime,
    /// Per-hop latency attribution, accumulated across hops.
    pub acc: HopBreakdown,
    /// Closed-loop payload riding the packet.
    pub payload: P,
}

impl<P> Packet<P> {
    /// End-to-end latency once delivered at `at`.
    pub fn latency(&self, at: SimTime) -> SimDuration {
        at.since(self.injected_at)
    }
}

/// What [`RegionNet`] asks its caller to do next: schedule follow-up
/// events (the caller owns the outbox and the event vocabulary) or
/// consume a delivery.
#[derive(Debug)]
pub enum NetStep<P> {
    /// Schedule an `Arrive { node, pkt }` in `node`'s region at `at` with
    /// tiebreak [`tb_arrive`]`(pkt.uid)`.
    Arrive {
        /// Arrival instant.
        at: SimTime,
        /// Node the packet lands on.
        node: NodeId,
        /// The packet in flight.
        pkt: Box<Packet<P>>,
    },
    /// Schedule a `LinkFree { link }` in the sending region at `at` with
    /// tiebreak [`tb_link_free`]`(link)`.
    LinkFree {
        /// Release instant.
        at: SimTime,
        /// Global link id.
        link: usize,
    },
    /// The packet reached its destination at the current event time.
    Delivered {
        /// The delivered packet.
        pkt: Box<Packet<P>>,
    },
}

/// The packet most recently granted onto a link, for barrier-time drop
/// condemnation. The ticket is *not* cleared on arrival — the coordinator
/// treats a ticket whose `arrive_at` is before the barrier as stale (its
/// `Arrive` already fired, so nothing is on the wire).
#[derive(Debug, Clone, Copy)]
pub struct InFlight {
    /// The packet's shard-invariant identity.
    pub uid: u64,
    /// Its correlation tag.
    pub tag: u64,
    /// When its pending `Arrive` fires.
    pub arrive_at: SimTime,
    /// The node it will land on.
    pub dest: NodeId,
}

/// The live (non-failed) ports of the fabric, materialized so route
/// computation and `minimal_ports` see the same port indexing after a
/// failure. (Mirror of the private view in `crate::sim`.)
struct LivePorts<'a, T: Topology> {
    inner: &'a T,
    ports: &'a [Vec<Port>],
}

impl<T: Topology> Topology for LivePorts<'_, T> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn ports(&self, node: NodeId) -> &[Port] {
        &self.ports[node.index()]
    }

    fn is_endpoint(&self, node: NodeId) -> bool {
        self.inner.is_endpoint(node)
    }

    fn coord(&self, node: NodeId) -> Option<Coord> {
        self.inner.coord(node)
    }
}

/// The shared routing snapshot of a partitioned fabric.
///
/// Workers read it behind an [`Arc`] and never mutate it; the barrier
/// coordinator keeps a master copy, applies fault strikes to that, and
/// republishes a fresh `Arc` to every region — so a route lookup inside an
/// epoch always sees the fabric as it stood at the last barrier, which is
/// exactly when the sequential engine's rebuilt tables took effect too.
#[derive(Debug, Clone)]
pub struct FabricTables<T: Topology> {
    topo: T,
    policy: RoutePolicy,
    timing: LinkTiming,
    routes: Routes,
    live_ports: Vec<Vec<Port>>,
    live_link_of: Vec<Vec<usize>>,
    link_of: Vec<Vec<usize>>,
    /// `(from, to, class, dir)` per global link id.
    link_meta: Vec<(NodeId, NodeId, LinkClass, Option<Direction>)>,
    region: RegionMap,
    alive: Vec<bool>,
    drained: Vec<bool>,
}

impl<T: Topology> FabricTables<T> {
    /// Tables over a healthy `topo` partitioned into `shards` row bands.
    pub fn new(topo: T, timing: LinkTiming, policy: RoutePolicy, shards: usize) -> Self {
        let routes = Routes::compute(&topo, policy);
        let mut link_meta = Vec::new();
        let mut link_of = Vec::with_capacity(topo.node_count());
        let mut live_ports = Vec::with_capacity(topo.node_count());
        for n in 0..topo.node_count() {
            let node = NodeId::new(n);
            let mut ids = Vec::new();
            for p in topo.ports(node) {
                ids.push(link_meta.len());
                link_meta.push((node, p.to, p.class, p.dir));
            }
            link_of.push(ids);
            live_ports.push(topo.ports(node).to_vec());
        }
        let live_link_of = link_of.clone();
        let alive = vec![true; link_meta.len()];
        let drained = vec![false; topo.node_count()];
        let region = RegionMap::bands(&topo, shards);
        FabricTables {
            topo,
            policy,
            timing,
            routes,
            live_ports,
            live_link_of,
            link_of,
            link_meta,
            region,
            alive,
            drained,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &T {
        &self.topo
    }

    /// The timing parameters in force.
    pub fn timing(&self) -> &LinkTiming {
        &self.timing
    }

    /// The region partition.
    pub fn region_map(&self) -> &RegionMap {
        &self.region
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.region.shard_count()
    }

    /// The region owning `node` (and every link it sends on).
    pub fn region_of(&self, node: NodeId) -> usize {
        self.region.region_of(node)
    }

    /// Total directed links in the fabric (dead ones included).
    pub fn link_count(&self) -> usize {
        self.link_meta.len()
    }

    /// `(from, to, class, dir)` of global link `id`.
    pub fn link_meta(&self, id: usize) -> (NodeId, NodeId, LinkClass, Option<Direction>) {
        self.link_meta[id]
    }

    /// Every directed link sent by `node` (dead ones included).
    pub fn links_from(&self, node: NodeId) -> &[usize] {
        &self.link_of[node.index()]
    }

    /// Whether the directed channel `id` is up.
    pub fn is_alive(&self, id: usize) -> bool {
        self.alive[id]
    }

    /// Whether `node` is drained (no new injections).
    pub fn is_drained(&self, node: NodeId) -> bool {
        self.drained[node.index()]
    }

    /// Mark `node` drained or undrained.
    pub fn set_drained(&mut self, node: NodeId, drained: bool) {
        self.drained[node.index()] = drained;
    }

    /// The conservative lookahead over the live cross-region links, if any
    /// cross a boundary.
    pub fn conservative_lookahead(&self) -> Option<SimDuration> {
        self.region.conservative_lookahead(&self.timing)
    }

    /// The global ids of both directed channels of the undirected link
    /// `a ↔ b`.
    pub fn link_ids(&self, a: NodeId, b: NodeId) -> Result<[usize; 2], FaultError> {
        let la = self
            .directed_link_id(a, b)
            .ok_or(FaultError::NoSuchLink { a, b })?;
        let lb = self
            .directed_link_id(b, a)
            .ok_or(FaultError::NoSuchLink { a, b })?;
        Ok([la, lb])
    }

    fn directed_link_id(&self, from: NodeId, to: NodeId) -> Option<usize> {
        if from.index() >= self.topo.node_count() {
            return None;
        }
        self.topo
            .ports(from)
            .iter()
            .position(|p| p.to == to)
            .map(|pi| self.link_of[from.index()][pi])
    }

    /// Fail the undirected link `a ↔ b`: both directed channels go dead
    /// and routes are recomputed over the survivors. If the failure would
    /// partition the fabric the tables are left untouched and the error
    /// returned — worker link state has not been modified yet, so there is
    /// nothing to roll back.
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) -> Result<[usize; 2], FaultError> {
        let ids = self.link_ids(a, b)?;
        if !self.alive[ids[0]] {
            return Err(FaultError::AlreadyInState { a, b, alive: false });
        }
        for id in ids {
            self.alive[id] = false;
        }
        if let Err(e) = self.rebuild_routes() {
            for id in ids {
                self.alive[id] = true;
            }
            self.rebuild_routes()
                .expect("rollback restores a routable fabric");
            return Err(e);
        }
        for id in ids {
            let (from, to, class, _) = self.link_meta[id];
            self.region.directed_link_down(from, to, class);
        }
        Ok(ids)
    }

    /// Bring the dead undirected link `a ↔ b` back and recompute routes.
    /// (Restoring an *alive* but degraded link is a worker-side heal and
    /// never reaches the tables; call sites check liveness first.)
    ///
    /// # Panics
    ///
    /// Panics if restoring somehow partitions the fabric — adding a link
    /// cannot disconnect anything.
    pub fn revive_link(&mut self, a: NodeId, b: NodeId) -> Result<[usize; 2], FaultError> {
        let ids = self.link_ids(a, b)?;
        if self.alive[ids[0]] {
            return Err(FaultError::AlreadyInState { a, b, alive: true });
        }
        for id in ids {
            self.alive[id] = true;
            let (from, to, class, _) = self.link_meta[id];
            self.region.directed_link_up(from, to, class);
        }
        self.rebuild_routes()
            .expect("restoring a link cannot partition the fabric");
        Ok(ids)
    }

    /// Invariant monitor: recompute minimal routes from scratch over the
    /// live fabric and compare distances against the installed tables.
    /// `Err` describes the first divergence — the incremental fault path
    /// has corrupted routing state. (Mirror of `NetworkSim::audit_routes`.)
    pub fn audit_routes(&self) -> Result<(), String> {
        let view = LivePorts {
            inner: &self.topo,
            ports: &self.live_ports,
        };
        let fresh = Routes::compute(&view, self.policy);
        let eps = self.topo.endpoints();
        for &from in &eps {
            for &to in &eps {
                if from == to {
                    continue;
                }
                let installed = self.routes.distance(from, 0, to);
                let recomputed = fresh.distance(from, 0, to);
                if installed != recomputed {
                    return Err(format!(
                        "route table inconsistent: {from}->{to} installed distance \
                         {installed}, recomputed {recomputed}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Invariant monitor: compare the incrementally maintained conservative
    /// lookahead against the brute-force walk oracle over the live fabric.
    /// `Err` describes the divergence — fault plumbing has desynced the
    /// cross-region link accounting. (Mirror of
    /// `NetworkSim::audit_lookahead`.)
    pub fn audit_lookahead(&self) -> Result<(), String> {
        let view = LivePorts {
            inner: &self.topo,
            ports: &self.live_ports,
        };
        let walked = crate::region::lookahead_by_walk(&view, &self.region, &self.timing);
        let incremental = self.conservative_lookahead();
        if walked == incremental {
            Ok(())
        } else {
            Err(format!(
                "conservative lookahead diverged from the oracle: incremental {incremental:?}, \
                 brute-force walk {walked:?}"
            ))
        }
    }

    /// The global id of the directed link `from -> to`, with the same
    /// error shape the flit-corruption fault path expects.
    pub fn directed_link(&self, from: NodeId, to: NodeId) -> Result<usize, FaultError> {
        self.directed_link_id(from, to)
            .ok_or(FaultError::NoSuchLink { a: from, b: to })
    }

    /// Recompute the live port views and minimal-path route tables from
    /// the current liveness flags; `Err` (with the tables unchanged) if
    /// any endpoint pair would become unreachable.
    fn rebuild_routes(&mut self) -> Result<(), FaultError> {
        for n in 0..self.topo.node_count() {
            let node = NodeId::new(n);
            let lp = &mut self.live_ports[n];
            let ll = &mut self.live_link_of[n];
            lp.clear();
            ll.clear();
            for (pi, p) in self.topo.ports(node).iter().enumerate() {
                let id = self.link_of[n][pi];
                if self.alive[id] {
                    lp.push(*p);
                    ll.push(id);
                }
            }
        }
        let view = LivePorts {
            inner: &self.topo,
            ports: &self.live_ports,
        };
        let routes = Routes::compute(&view, self.policy);
        let eps = self.topo.endpoints();
        for &from in &eps {
            for &to in &eps {
                if from != to && routes.distance(from, 0, to) == Routes::UNREACHABLE {
                    return Err(FaultError::Partitioned { from, to });
                }
            }
        }
        self.routes = routes;
        Ok(())
    }
}

/// Topology-indexed and time-windowed accumulators for one region's share
/// of the fabric: where traffic lands (per-node), where it flows (per-link)
/// and when (a fixed-width [`Timeline`]).
///
/// Every node and every directed link is owned by exactly one region, so
/// per-region accumulators partition the fabric and merging is exact:
/// element-wise add (plus `max` for the backlog high-water marks) and a
/// commutative [`Timeline::merge`]. Merged in region order, the result is
/// byte-identical at any shard/thread count — same argument as the
/// registries the campaigns already merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetHeat {
    /// Messages delivered at each destination node, indexed by node id.
    pub node_delivered: Vec<u64>,
    /// Payload bytes delivered at each destination node.
    pub node_bytes: Vec<u64>,
    /// Payload bytes granted onto each directed link.
    pub link_bytes: Vec<u64>,
    /// Picoseconds each directed link was occupied by granted transfers.
    pub link_busy_ps: Vec<u64>,
    /// Deepest queue observed behind each directed link at grant time.
    pub link_peak_backlog: Vec<u64>,
    /// Windowed counters `net.delivered` / `net.bytes` / `net.link_busy_ps`,
    /// gauge `net.peak_backlog`, histogram `net.latency_ns`.
    pub timeline: Timeline,
}

impl NetHeat {
    /// Zeroed accumulators over `nodes` nodes and `links` directed links,
    /// windowed at `window_ps`.
    pub fn new(window_ps: u64, nodes: usize, links: usize) -> Self {
        NetHeat {
            node_delivered: vec![0; nodes],
            node_bytes: vec![0; nodes],
            link_bytes: vec![0; links],
            link_busy_ps: vec![0; links],
            link_peak_backlog: vec![0; links],
            timeline: Timeline::new(window_ps),
        }
    }

    /// Fold another region's accumulators into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two sides cover different topologies or window widths.
    pub fn merge(&mut self, other: &NetHeat) {
        assert_eq!(self.node_delivered.len(), other.node_delivered.len());
        assert_eq!(self.link_bytes.len(), other.link_bytes.len());
        for (a, b) in self.node_delivered.iter_mut().zip(&other.node_delivered) {
            *a += b;
        }
        for (a, b) in self.node_bytes.iter_mut().zip(&other.node_bytes) {
            *a += b;
        }
        for (a, b) in self.link_bytes.iter_mut().zip(&other.link_bytes) {
            *a += b;
        }
        for (a, b) in self.link_busy_ps.iter_mut().zip(&other.link_busy_ps) {
            *a += b;
        }
        for (a, b) in self
            .link_peak_backlog
            .iter_mut()
            .zip(&other.link_peak_backlog)
        {
            *a = (*a).max(*b);
        }
        self.timeline.merge(&other.timeline);
    }
}

/// One region's owned slice of the fabric: the mutable [`Link`] state of
/// every directed link whose sending node the region owns, the packets
/// queued on those links, and the region's share of the Chrome trace.
#[derive(Debug)]
pub struct RegionNet<T: Topology, P> {
    region: usize,
    tables: Arc<FabricTables<T>>,
    /// Indexed by global link id; `Some` for owned (region-local) links.
    links: Vec<Option<Link>>,
    /// Queued packets, addressed by the region-local [`MessageId`]s living
    /// in the link queues. Slot numbering is pure bookkeeping — behavior
    /// never depends on it.
    slab: Vec<Option<Box<Packet<P>>>>,
    free: Vec<u32>,
    tickets: Vec<Option<InFlight>>,
    delivered: u64,
    trace: Option<Box<TraceSink>>,
    heat: Option<Box<NetHeat>>,
}

impl<T: Topology, P> RegionNet<T, P> {
    /// The slice of `tables`' fabric owned by `region`.
    pub fn new(region: usize, tables: Arc<FabricTables<T>>) -> Self {
        let links = (0..tables.link_count())
            .map(|id| {
                let (from, to, class, dir) = tables.link_meta(id);
                (tables.region_of(from) == region).then(|| Link::new(from, to, class, dir))
            })
            .collect();
        let tickets = vec![None; tables.link_count()];
        RegionNet {
            region,
            tables,
            links,
            slab: Vec::new(),
            free: Vec::new(),
            tickets,
            delivered: 0,
            trace: None,
            heat: None,
        }
    }

    /// This region's id.
    pub fn region(&self) -> usize {
        self.region
    }

    /// The shared routing snapshot.
    pub fn tables(&self) -> &FabricTables<T> {
        &self.tables
    }

    /// Install a fresh routing snapshot (barrier republish).
    pub fn set_tables(&mut self, tables: Arc<FabricTables<T>>) {
        self.tables = tables;
    }

    /// Messages delivered inside this region.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// CRC retransmits across this region's links.
    pub fn crc_retransmits(&self) -> u64 {
        self.links.iter().flatten().map(Link::crc_retransmits).sum()
    }

    /// Start collecting Chrome-trace events (complete events only; the
    /// assembler adds lane metadata once, after merging regions).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Box::default());
    }

    /// The trace sink, when tracing — for callers charging extra lanes
    /// (e.g. memory service events).
    pub fn trace_mut(&mut self) -> Option<&mut TraceSink> {
        self.trace.as_deref_mut()
    }

    /// Detach and return the collected trace, if tracing was on.
    pub fn take_trace(&mut self) -> Option<TraceSink> {
        self.trace.take().map(|b| *b)
    }

    /// Start accumulating topology heat and a `window_ps`-wide timeline for
    /// this region's slice of the fabric.
    pub fn enable_heat(&mut self, window_ps: u64) {
        self.heat = Some(Box::new(NetHeat::new(
            window_ps,
            self.tables.topology().node_count(),
            self.tables.link_count(),
        )));
    }

    /// The heat accumulators, when enabled — for callers charging extra
    /// windowed metrics (e.g. memory service counters).
    pub fn heat_mut(&mut self) -> Option<&mut NetHeat> {
        self.heat.as_deref_mut()
    }

    /// Detach and return the accumulated heat, if it was enabled.
    pub fn take_heat(&mut self) -> Option<NetHeat> {
        self.heat.take().map(|b| *b)
    }

    /// Exclusive access to an owned link (barrier-time fault mutation).
    ///
    /// # Panics
    ///
    /// Panics if the region does not own `id`.
    pub fn link_mut(&mut self, id: usize) -> &mut Link {
        self.links[id]
            .as_mut()
            .expect("link is owned by this region")
    }

    /// Shared access to an owned link.
    pub fn link(&self, id: usize) -> &Link {
        self.links[id]
            .as_ref()
            .expect("link is owned by this region")
    }

    /// Whether this region owns link `id`.
    pub fn owns_link(&self, id: usize) -> bool {
        self.links[id].is_some()
    }

    /// The drop-condemnation ticket of the packet last granted on `id`.
    pub fn in_flight_ticket(&self, id: usize) -> Option<InFlight> {
        self.tickets[id]
    }

    /// Evict every queued packet from link `id` (highest priority first),
    /// returning the owned packets for barrier-time re-routing.
    pub fn evict_queued(&mut self, id: usize) -> Vec<Box<Packet<P>>> {
        let drained = self.link_mut(id).drain_queued();
        drained.into_iter().map(|mid| self.take_slot(mid)).collect()
    }

    fn alloc_slot(&mut self, pkt: Box<Packet<P>>) -> MessageId {
        if let Some(slot) = self.free.pop() {
            self.slab[slot as usize] = Some(pkt);
            MessageId(slot)
        } else {
            let slot = u32::try_from(self.slab.len()).expect("fewer than 2^32 queued packets");
            self.slab.push(Some(pkt));
            MessageId(slot)
        }
    }

    fn take_slot(&mut self, id: MessageId) -> Box<Packet<P>> {
        let pkt = self.slab[id.index()].take().expect("slot occupied");
        self.free.push(id.0);
        pkt
    }

    /// Process a packet arriving on `node` at `now`: deliver it, or route
    /// it onto the next output link (starting a transfer if the link is
    /// idle). Emits follow-ups into `steps`.
    pub fn handle_arrive(
        &mut self,
        now: SimTime,
        node: NodeId,
        pkt: Box<Packet<P>>,
        steps: &mut Vec<NetStep<P>>,
    ) {
        debug_assert_eq!(self.tables.region_of(node), self.region, "foreign arrive");
        if node == pkt.dst {
            self.delivered += 1;
            if let Some(h) = self.heat.as_deref_mut() {
                h.node_delivered[node.index()] += 1;
                h.node_bytes[node.index()] += pkt.bytes;
                let at = now.as_ps();
                h.timeline.counter_add(at, "net.delivered", 1);
                h.timeline.counter_add(at, "net.bytes", pkt.bytes);
                h.timeline
                    .record(at, "net.latency_ns", pkt.latency(now).as_ps() / 1_000);
            }
            if let Some(tr) = self.trace.as_deref_mut() {
                tr.complete(
                    pkt.class.name(),
                    "msg",
                    PID_MESSAGES,
                    pkt.src.index() as u32,
                    pkt.injected_at.as_ps(),
                    pkt.latency(now).as_ps(),
                    &[
                        ("tag", pkt.tag),
                        ("hops", u64::from(pkt.hops)),
                        ("dst", pkt.dst.index() as u64),
                    ],
                );
            }
            steps.push(NetStep::Delivered { pkt });
            return;
        }
        let link = self.choose_output(node, &pkt);
        let class = pkt.class;
        let slot = self.alloc_slot(pkt);
        let l = self.links[link].as_mut().expect("chosen link is owned");
        l.enqueue(class, slot);
        if !l.is_busy() {
            self.start_transfer(link, now, steps);
        }
    }

    /// Process a link becoming free at `now`: lift pauses, release the
    /// channel, and grant the next queued packet if the link is still up.
    pub fn handle_link_free(&mut self, now: SimTime, link: usize, steps: &mut Vec<NetStep<P>>) {
        let l = self.links[link].as_mut().expect("freed link is owned");
        if l.pause_until() > now {
            // Still paused: push the release to the pause horizon.
            steps.push(NetStep::LinkFree {
                at: l.pause_until(),
                link,
            });
            return;
        }
        l.release();
        if l.is_alive() && l.backlog() > 0 {
            self.start_transfer(link, now, steps);
        }
    }

    /// Route `pkt` out of `node`: minimal ports over the live fabric, the
    /// least-backlogged candidate for adaptive classes (ties to the lowest
    /// port index). Identical to `NetworkSim::choose_output`.
    fn choose_output(&self, node: NodeId, pkt: &Packet<P>) -> usize {
        let t = &*self.tables;
        let view = LivePorts {
            inner: &t.topo,
            ports: &t.live_ports,
        };
        let candidates = t.routes.minimal_ports(&view, node, pkt.hops, pkt.dst);
        debug_assert!(!candidates.is_empty(), "routing dead end");
        let chosen = if pkt.class.may_route_adaptively() {
            *candidates
                .iter()
                .min_by_key(|&&pi| {
                    let link = self.links[t.live_link_of[node.index()][pi]]
                        .as_ref()
                        .expect("candidate link is owned by the sender's region");
                    (link.backlog() + usize::from(link.is_busy()), pi)
                })
                .expect("non-empty candidates")
        } else {
            candidates[0]
        };
        t.live_link_of[node.index()][chosen]
    }

    /// Grant the head-of-queue packet on `link_id` and emit its arrival
    /// and the link's next availability. The arithmetic mirrors
    /// `NetworkSim::start_transfer` exactly.
    fn start_transfer(&mut self, link_id: usize, now: SimTime, steps: &mut Vec<NetStep<P>>) {
        let timing = self.tables.timing;
        let l = self.links[link_id].as_mut().expect("granting owned link");
        let Some(mid) = l.grant() else {
            return;
        };
        let stretch = l.degrade_factor();
        let retransmit = l.take_corruption();
        let backlog = l.backlog() as u32;
        let link_class = l.class;
        let to = l.to;
        let mut pkt = self.take_slot(mid);
        let transfer =
            SimDuration::transfer_time(pkt.bytes, timing.bandwidth_gbps).saturating_mul(stretch);
        let penalty = SimDuration::from_ns(
            f64::from(backlog.min(timing.congestion_cap)) * timing.congestion_ns_per_queued,
        );
        let serialization = if pkt.serialized {
            SimDuration::ZERO
        } else {
            pkt.serialized = true;
            transfer
        };
        let wire = timing.wire(link_class).saturating_mul(stretch);
        let resend = if retransmit {
            transfer + wire
        } else {
            SimDuration::ZERO
        };
        let occupancy = transfer
            + penalty
            + if retransmit {
                transfer
            } else {
                SimDuration::ZERO
            };
        pkt.hops += 1;
        pkt.acc.queued_ps += now.since(pkt.enqueued_at).as_ps();
        pkt.acc.router_ps += timing.router_latency.as_ps();
        pkt.acc.wire_ps += wire.as_ps() + if retransmit { wire.as_ps() } else { 0 };
        pkt.acc.serialization_ps +=
            serialization.as_ps() + if retransmit { transfer.as_ps() } else { 0 };
        pkt.acc.congestion_ps += penalty.as_ps();
        let arrive_at = now + timing.router_latency + wire + serialization + penalty + resend;
        pkt.enqueued_at = arrive_at;
        let (bytes, tag, uid, msg_class) = (pkt.bytes, pkt.tag, pkt.uid, pkt.class);
        let l = self.links[link_id].as_mut().expect("granting owned link");
        l.account(msg_class, bytes, occupancy);
        self.tickets[link_id] = Some(InFlight {
            uid,
            tag,
            arrive_at,
            dest: to,
        });
        if let Some(h) = self.heat.as_deref_mut() {
            h.link_bytes[link_id] += bytes;
            h.link_busy_ps[link_id] += occupancy.as_ps();
            h.link_peak_backlog[link_id] = h.link_peak_backlog[link_id].max(u64::from(backlog));
            let at = now.as_ps();
            h.timeline
                .counter_add(at, "net.link_busy_ps", occupancy.as_ps());
            h.timeline
                .gauge_max(at, "net.peak_backlog", u64::from(backlog));
        }
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.complete(
                msg_class.name(),
                "link",
                PID_LINKS,
                link_id as u32,
                now.as_ps(),
                occupancy.as_ps(),
                &[("tag", tag), ("backlog", u64::from(backlog))],
            );
        }
        steps.push(NetStep::Arrive {
            at: arrive_at,
            node: to,
            pkt,
        });
        steps.push(NetStep::LinkFree {
            at: now + occupancy,
            link: link_id,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasim_topology::Torus2D;

    fn tables(shards: usize) -> FabricTables<Torus2D> {
        FabricTables::new(
            Torus2D::new(4, 4),
            LinkTiming::ev7_torus(),
            RoutePolicy::Minimal,
            shards,
        )
    }

    fn packet(src: usize, dst: usize, uid: u64) -> Box<Packet<()>> {
        Box::new(Packet {
            src: NodeId::new(src),
            dst: NodeId::new(dst),
            class: MessageClass::Request,
            bytes: 64,
            tag: uid >> 16,
            uid,
            injected_at: SimTime::ZERO,
            hops: 0,
            serialized: false,
            enqueued_at: SimTime::ZERO,
            acc: HopBreakdown::default(),
            payload: (),
        })
    }

    /// Drive packets to delivery through however many regions they cross,
    /// dispatching each emitted step to the owning region in (time, kind)
    /// order — a miniature sequential epoch engine.
    fn run_to_empty(
        nets: &mut [RegionNet<Torus2D, ()>],
        mut pending: Vec<(SimTime, u64, usize, NetStep<()>)>,
    ) -> Vec<(u64, u64, u64)> {
        let mut done = Vec::new();
        while !pending.is_empty() {
            pending.sort_by_key(|&(at, tb, _, _)| (at, tb));
            let (at, _, region, step) = pending.remove(0);
            let mut steps = Vec::new();
            match step {
                NetStep::Arrive { node, pkt, .. } => {
                    nets[region].handle_arrive(at, node, pkt, &mut steps);
                }
                NetStep::LinkFree { link, .. } => {
                    nets[region].handle_link_free(at, link, &mut steps);
                }
                NetStep::Delivered { .. } => unreachable!("consumed below"),
            }
            for s in steps {
                match s {
                    NetStep::Delivered { pkt } => {
                        done.push((pkt.uid, at.as_ps(), u64::from(pkt.hops)));
                    }
                    NetStep::Arrive { at, node, pkt } => {
                        let dest = nets[0].tables().region_of(node);
                        let tb = tb_arrive(pkt.uid);
                        pending.push((at, tb, dest, NetStep::Arrive { at, node, pkt }));
                    }
                    NetStep::LinkFree { at, link } => {
                        let (from, ..) = nets[0].tables().link_meta(link);
                        let dest = nets[0].tables().region_of(from);
                        let tb = tb_link_free(link);
                        pending.push((at, tb, dest, NetStep::LinkFree { at, link }));
                    }
                }
            }
        }
        done.sort_unstable();
        done
    }

    fn deliveries_at(shards: usize) -> Vec<(u64, u64, u64)> {
        let t = Arc::new(tables(shards));
        let mut nets: Vec<RegionNet<Torus2D, ()>> = (0..t.region_count())
            .map(|r| RegionNet::new(r, t.clone()))
            .collect();
        let mut seed = Vec::new();
        for (i, (src, dst)) in [(0usize, 15usize), (3, 12), (5, 6), (14, 1), (9, 9)]
            .into_iter()
            .enumerate()
        {
            let uid = (i as u64) << 16;
            let pkt = packet(src, dst, uid);
            let region = t.region_of(pkt.src);
            let node = pkt.src;
            seed.push((
                SimTime::ZERO,
                tb_arrive(uid),
                region,
                NetStep::Arrive {
                    at: SimTime::ZERO,
                    node,
                    pkt,
                },
            ));
        }
        run_to_empty(&mut nets, seed)
    }

    #[test]
    fn partitioned_delivery_is_shard_count_invariant() {
        let reference = deliveries_at(1);
        assert_eq!(reference.len(), 5);
        for shards in [2, 4] {
            assert_eq!(deliveries_at(shards), reference, "{shards} shards diverged");
        }
    }

    /// Same traffic as `deliveries_at`, with heat accumulation on; returns
    /// the region heats merged in region order.
    fn heat_at(shards: usize) -> NetHeat {
        let t = Arc::new(tables(shards));
        let mut nets: Vec<RegionNet<Torus2D, ()>> = (0..t.region_count())
            .map(|r| RegionNet::new(r, t.clone()))
            .collect();
        for net in &mut nets {
            net.enable_heat(10_000);
        }
        let mut seed = Vec::new();
        for (i, (src, dst)) in [(0usize, 15usize), (3, 12), (5, 6), (14, 1), (9, 9)]
            .into_iter()
            .enumerate()
        {
            let uid = (i as u64) << 16;
            let pkt = packet(src, dst, uid);
            let region = t.region_of(pkt.src);
            let node = pkt.src;
            seed.push((
                SimTime::ZERO,
                tb_arrive(uid),
                region,
                NetStep::Arrive {
                    at: SimTime::ZERO,
                    node,
                    pkt,
                },
            ));
        }
        run_to_empty(&mut nets, seed);
        let mut merged = NetHeat::new(10_000, t.topology().node_count(), t.link_count());
        for net in &mut nets {
            merged.merge(&net.take_heat().expect("heat was enabled"));
        }
        merged
    }

    #[test]
    fn heat_accumulators_are_shard_count_invariant_and_sum_exactly() {
        let reference = heat_at(1);
        // All five messages landed, and only at their destinations.
        assert_eq!(reference.node_delivered.iter().sum::<u64>(), 5);
        assert_eq!(reference.node_delivered[15], 1);
        assert_eq!(reference.node_bytes.iter().sum::<u64>(), 5 * 64);
        // The windowed counters partition the same totals (exact-sum).
        let totals = reference.timeline.totals();
        assert_eq!(totals.counter("net.delivered"), 5);
        assert_eq!(totals.counter("net.bytes"), 5 * 64);
        assert_eq!(
            totals.counter("net.link_busy_ps"),
            reference.link_busy_ps.iter().sum::<u64>()
        );
        for shards in [2, 4] {
            assert_eq!(heat_at(shards), reference, "{shards} shards diverged");
        }
    }

    #[test]
    fn hop_math_matches_networksim_zero_load() {
        // One packet, idle fabric: latency must equal NetworkSim's
        // unloaded analytic (serialization once + per-hop router + wire).
        let t = Arc::new(tables(1));
        let mut nets = vec![RegionNet::<Torus2D, ()>::new(0, t.clone())];
        let pkt = packet(0, 1, 7 << 16);
        let classes: Vec<LinkClass> = vec![t.link_meta(t.links_from(NodeId::new(0))[0]).2];
        let reference = {
            let sim = crate::NetworkSim::new(Torus2D::new(4, 4), LinkTiming::ev7_torus());
            sim.unloaded_latency(&classes, 64)
        };
        let done = run_to_empty(
            &mut nets,
            vec![(
                SimTime::ZERO,
                tb_arrive(pkt.uid),
                0,
                NetStep::Arrive {
                    at: SimTime::ZERO,
                    node: NodeId::new(0),
                    pkt,
                },
            )],
        );
        assert_eq!(done.len(), 1);
        let (_, delivered_ps, hops) = done[0];
        assert_eq!(hops, 1);
        assert_eq!(delivered_ps, reference.as_ps());
    }

    #[test]
    fn failing_a_link_reroutes_and_restores() {
        let mut master = tables(2);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let ids = master.fail_link(a, b).expect("first failure applies");
        assert!(!master.is_alive(ids[0]));
        assert_eq!(
            master.fail_link(a, b),
            Err(FaultError::AlreadyInState { a, b, alive: false })
        );
        master.revive_link(a, b).expect("revive applies");
        assert!(master.is_alive(ids[0]));
        assert_eq!(
            master.revive_link(a, b),
            Err(FaultError::AlreadyInState { a, b, alive: true })
        );
    }

    #[test]
    fn partitioning_failure_is_rejected_and_rolled_back() {
        // Cut three of node 0's four links, then demand the fourth: that
        // would sever node 0 and must be refused with the tables intact.
        let mut master = tables(2);
        for to in [1usize, 3, 4] {
            master
                .fail_link(NodeId::new(0), NodeId::new(to))
                .expect("fabric survives");
        }
        assert!(matches!(
            master.fail_link(NodeId::new(0), NodeId::new(12)),
            Err(FaultError::Partitioned { .. })
        ));
        // The rollback leaves the last link routable: node 0 still sends.
        let ids = master.link_ids(NodeId::new(0), NodeId::new(12)).unwrap();
        assert!(master.is_alive(ids[0]) && master.is_alive(ids[1]));
    }

    #[test]
    fn ticket_records_the_granted_packet() {
        let t = Arc::new(tables(1));
        let mut net = RegionNet::<Torus2D, ()>::new(0, t.clone());
        let pkt = packet(0, 2, 42 << 16);
        let mut steps = Vec::new();
        net.handle_arrive(SimTime::ZERO, NodeId::new(0), pkt, &mut steps);
        let arrive = steps
            .iter()
            .find_map(|s| match s {
                NetStep::Arrive { at, .. } => Some(*at),
                _ => None,
            })
            .expect("hop scheduled");
        let ticket = net
            .tables()
            .links_from(NodeId::new(0))
            .iter()
            .find_map(|&id| net.in_flight_ticket(id))
            .expect("a link carries the packet");
        assert_eq!(ticket.uid, 42 << 16);
        assert_eq!(ticket.arrive_at, arrive);
    }
}
