//! The 21364 router's two-level arbitration (paper §2).
//!
//! "Each input port has two first-level arbiters, called the local
//! arbiters, each of which selects a candidate packet among those waiting
//! at the input port. Each output port has a second-level arbiter, called
//! the global arbiter, which selects a packet from those nominated for it
//! by the local arbiters."
//!
//! [`NetworkSim`](crate::NetworkSim) abstracts this into per-link
//! priority queues; this module models the mechanism itself, cycle by
//! arbitration cycle, so its fairness and work-conservation properties can
//! be tested directly — they are the justification for the abstraction.

use alphasim_kernel::DetRng;

use crate::msg::MessageClass;

/// A packet waiting at an input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitingPacket {
    /// Caller-visible identity.
    pub id: u64,
    /// Coherence class (drives VC priority).
    pub class: MessageClass,
    /// Output port the packet wants.
    pub output: usize,
}

/// One router's arbitration state: `inputs` input ports (each with two
/// local arbiters) feeding `outputs` output ports (one global arbiter
/// each).
#[derive(Debug)]
pub struct TwoLevelArbiter {
    inputs: Vec<Vec<WaitingPacket>>,
    outputs: usize,
    /// Round-robin pointers of the global arbiters (fairness across
    /// inputs).
    rr: Vec<usize>,
    granted: u64,
}

impl TwoLevelArbiter {
    /// Local arbiters per input port ("two first-level arbiters").
    pub const LOCAL_ARBITERS: usize = 2;

    /// A router with `inputs` input and `outputs` output ports.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(inputs: usize, outputs: usize) -> Self {
        assert!(inputs > 0 && outputs > 0, "degenerate router");
        TwoLevelArbiter {
            inputs: vec![Vec::new(); inputs],
            outputs,
            rr: vec![0; outputs],
            granted: 0,
        }
    }

    /// Queue a packet at input port `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` or the packet's output is out of range.
    pub fn enqueue(&mut self, port: usize, packet: WaitingPacket) {
        assert!(port < self.inputs.len(), "input port out of range");
        assert!(packet.output < self.outputs, "output port out of range");
        self.inputs[port].push(packet);
    }

    /// Packets waiting at input `port`.
    pub fn backlog(&self, port: usize) -> usize {
        self.inputs[port].len()
    }

    /// Total waiting packets.
    pub fn total_backlog(&self) -> usize {
        self.inputs.iter().map(Vec::len).sum()
    }

    /// Grants issued so far.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Run one arbitration cycle: each input's local arbiters nominate up
    /// to [`Self::LOCAL_ARBITERS`] packets (highest class priority first,
    /// distinct outputs where possible); each output's global arbiter
    /// grants one nomination, round-robin across inputs. Returns the
    /// granted packets, removed from their queues — at most one per output
    /// port.
    pub fn arbitrate(&mut self, rng: &mut DetRng) -> Vec<WaitingPacket> {
        // Phase 1: local nomination.
        // nominations[output] = (input, index-in-queue, packet)
        let mut nominations: Vec<Vec<(usize, usize, WaitingPacket)>> =
            vec![Vec::new(); self.outputs];
        for (input, queue) in self.inputs.iter().enumerate() {
            if queue.is_empty() {
                continue;
            }
            // Each local arbiter picks the best packet for a distinct
            // output: sort candidate indices by class priority (stable on
            // arrival order) and take up to LOCAL_ARBITERS with distinct
            // outputs.
            let mut order: Vec<usize> = (0..queue.len()).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(queue[i].class.priority()));
            let mut used_outputs = Vec::new();
            for &i in &order {
                if used_outputs.len() == Self::LOCAL_ARBITERS {
                    break;
                }
                let p = queue[i];
                if used_outputs.contains(&p.output) {
                    continue;
                }
                used_outputs.push(p.output);
                nominations[p.output].push((input, i, p));
            }
        }
        // Phase 2: global grant, round-robin over inputs per output.
        let mut grants: Vec<(usize, usize, WaitingPacket)> = Vec::new();
        for (output, noms) in nominations.iter().enumerate() {
            if noms.is_empty() {
                continue;
            }
            let start = self.rr[output];
            let chosen = noms
                .iter()
                .min_by_key(|(input, _, p)| {
                    (
                        std::cmp::Reverse(p.class.priority()),
                        (input + self.inputs.len() - start) % self.inputs.len(),
                    )
                })
                .copied()
                .expect("non-empty nominations");
            self.rr[output] = (chosen.0 + 1) % self.inputs.len();
            grants.push(chosen);
        }
        // Remove granted packets (highest index first per input so earlier
        // indices stay valid).
        grants.sort_by_key(|&(input, idx, _)| (input, std::cmp::Reverse(idx)));
        let mut out = Vec::with_capacity(grants.len());
        for (input, idx, p) in grants {
            let removed = self.inputs[input].remove(idx);
            debug_assert_eq!(removed.id, p.id);
            out.push(p);
        }
        self.granted += out.len() as u64;
        // Determinism note: rng is reserved for tie-breaks the 21364 makes
        // in hardware (aging); the current policy is fully deterministic.
        let _ = rng;
        out
    }

    /// Drain everything, counting cycles (for work-conservation tests).
    pub fn drain(&mut self, rng: &mut DetRng, max_cycles: usize) -> usize {
        let mut cycles = 0;
        while self.total_backlog() > 0 {
            let granted = self.arbitrate(rng);
            cycles += 1;
            assert!(
                !granted.is_empty() || self.total_backlog() == 0,
                "arbitration stall with {} waiting",
                self.total_backlog()
            );
            assert!(cycles <= max_cycles, "drain exceeded {max_cycles} cycles");
        }
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(id: u64, class: MessageClass, output: usize) -> WaitingPacket {
        WaitingPacket { id, class, output }
    }

    #[test]
    fn one_grant_per_output_per_cycle() {
        let mut a = TwoLevelArbiter::new(4, 4);
        let mut rng = DetRng::seeded(1);
        for i in 0..4 {
            a.enqueue(i, pkt(i as u64, MessageClass::Request, 0));
        }
        let g = a.arbitrate(&mut rng);
        assert_eq!(g.len(), 1, "one output can grant once");
        assert_eq!(a.total_backlog(), 3);
    }

    #[test]
    fn distinct_outputs_grant_in_parallel() {
        let mut a = TwoLevelArbiter::new(4, 4);
        let mut rng = DetRng::seeded(1);
        for i in 0..4usize {
            a.enqueue(i, pkt(i as u64, MessageClass::Request, i));
        }
        let g = a.arbitrate(&mut rng);
        assert_eq!(g.len(), 4, "independent outputs all grant");
    }

    #[test]
    fn higher_class_wins_the_output() {
        let mut a = TwoLevelArbiter::new(2, 1);
        let mut rng = DetRng::seeded(1);
        a.enqueue(0, pkt(1, MessageClass::Request, 0));
        a.enqueue(1, pkt(2, MessageClass::BlockResponse, 0));
        let g = a.arbitrate(&mut rng);
        assert_eq!(g[0].id, 2, "response outranks request");
    }

    #[test]
    fn round_robin_is_fair_across_inputs() {
        // Two inputs contending for one output with equal-class packets:
        // grants must alternate.
        let mut a = TwoLevelArbiter::new(2, 1);
        let mut rng = DetRng::seeded(1);
        for i in 0..10u64 {
            a.enqueue(0, pkt(100 + i, MessageClass::Request, 0));
            a.enqueue(1, pkt(200 + i, MessageClass::Request, 0));
        }
        let mut from0 = 0;
        let mut from1 = 0;
        for _ in 0..20 {
            for p in a.arbitrate(&mut rng) {
                if p.id < 200 {
                    from0 += 1;
                } else {
                    from1 += 1;
                }
            }
        }
        assert_eq!(from0 + from1, 20);
        assert!(
            (from0 as i64 - from1 as i64).abs() <= 2,
            "{from0} vs {from1}"
        );
    }

    #[test]
    fn local_arbiters_nominate_two_distinct_outputs() {
        // One input holding packets for two outputs can fill both in one
        // cycle (the point of having two local arbiters).
        let mut a = TwoLevelArbiter::new(1, 4);
        let mut rng = DetRng::seeded(1);
        a.enqueue(0, pkt(1, MessageClass::Request, 0));
        a.enqueue(0, pkt(2, MessageClass::Request, 1));
        a.enqueue(0, pkt(3, MessageClass::Request, 2));
        let g = a.arbitrate(&mut rng);
        assert_eq!(g.len(), TwoLevelArbiter::LOCAL_ARBITERS);
    }

    #[test]
    fn drain_is_work_conserving() {
        let mut a = TwoLevelArbiter::new(4, 4);
        let mut rng = DetRng::seeded(7);
        let mut n = 0u64;
        for input in 0..4 {
            for output in 0..4 {
                for _ in 0..5 {
                    a.enqueue(input, pkt(n, MessageClass::Request, output));
                    n += 1;
                }
            }
        }
        // 80 packets over 4 outputs: lower bound 20 cycles; the two local
        // arbiters per input bound nomination parallelism, but all outputs
        // stay busy: drain in ~20-40 cycles, never stall.
        let cycles = a.drain(&mut rng, 200);
        assert!((20..=60).contains(&cycles), "{cycles} cycles");
        assert_eq!(a.granted(), 80);
    }
}
