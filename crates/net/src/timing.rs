//! Link and router timing parameters.

use alphasim_kernel::SimDuration;
use alphasim_topology::LinkClass;
use serde::{Deserialize, Serialize};

/// Timing of the fabric: per-hop router pipeline delay, per-class wire
/// latency, and per-direction link bandwidth.
///
/// The constants for the reproduced machines live here because the network
/// simulator and the analytic latency probes in `alphasim-system` must agree
/// on them; each machine constructor documents the paper figures it was
/// fitted against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkTiming {
    /// Router pipeline latency charged at every hop (input arbitration,
    /// crossbar, output arbitration).
    pub router_latency: SimDuration,
    /// Wire/flight latency of a dual-CPU module link.
    pub module_wire: SimDuration,
    /// Wire latency of a backplane (board) link.
    pub board_wire: SimDuration,
    /// Wire latency of an inter-drawer cable (wrap/shuffle links).
    pub cable_wire: SimDuration,
    /// Wire latency of first-level switch / bus links (GS320 CPU↔QBB
    /// switch, ES45 bus).
    pub switch_wire: SimDuration,
    /// Wire latency of second-level links (GS320 QBB↔global switch, SC45
    /// cluster rails).
    pub global_wire: SimDuration,
    /// Usable bandwidth per direction, GB/s (EV7: 3.1 GB/s per direction of
    /// a 6.2 GB/s link).
    pub bandwidth_gbps: f64,
    /// Extra arbitration delay per already-queued packet when a message is
    /// granted a busy output — the message-level stand-in for head-of-line
    /// blocking and adaptive-channel retry. This is what bends delivered
    /// bandwidth *down* past saturation in Fig. 15.
    pub congestion_ns_per_queued: f64,
    /// Cap on the congestion penalty, in queued packets.
    pub congestion_cap: u32,
}

impl LinkTiming {
    /// The wire latency for a link of `class`.
    pub fn wire(&self, class: LinkClass) -> SimDuration {
        match class {
            LinkClass::Module => self.module_wire,
            LinkClass::Board => self.board_wire,
            LinkClass::Cable | LinkClass::Shuffle => self.cable_wire,
            LinkClass::QbbLocal | LinkClass::Bus => self.switch_wire,
            LinkClass::QbbGlobal | LinkClass::Cluster => self.global_wire,
        }
    }

    /// One-way cost of a hop over a link of `class` (router + wire).
    pub fn hop(&self, class: LinkClass) -> SimDuration {
        self.router_latency + self.wire(class)
    }

    /// The EV7 torus fabric, fitted to the paper's Fig. 13 latency map.
    ///
    /// With a local open-page access of 83 ns and a fixed 21 ns remote
    /// (directory/forwarding) overhead, per-hop one-way costs of 17.5 ns
    /// (module), 20.5 ns (board) and 25 ns (cable) reproduce the measured
    /// grid to within ~5 ns: 139/145/154 ns for the three 1-hop flavors,
    /// 186 ns for (0,2), 262 vs. 259 ns for the 4-hop corner.
    pub fn ev7_torus() -> Self {
        LinkTiming {
            router_latency: SimDuration::from_ns(12.0),
            module_wire: SimDuration::from_ns(5.5),
            board_wire: SimDuration::from_ns(8.5),
            cable_wire: SimDuration::from_ns(13.0),
            switch_wire: SimDuration::from_ns(10.0),
            global_wire: SimDuration::from_ns(20.0),
            bandwidth_gbps: 3.1,
            congestion_ns_per_queued: 0.25,
            congestion_cap: 24,
        }
    }

    /// The GS320 hierarchical switch, fitted to Fig. 12: a CPU↔QBB-switch
    /// hop of 75 ns and a QBB↔global-switch hop of 107.5 ns give ~330 ns
    /// local (switch + 180 ns SDRAM) and ~760 ns remote read-clean; the
    /// global switch port carries ~1.6 GB/s.
    pub fn gs320_switch() -> Self {
        LinkTiming {
            router_latency: SimDuration::from_ns(25.0),
            module_wire: SimDuration::from_ns(50.0),
            board_wire: SimDuration::from_ns(50.0),
            cable_wire: SimDuration::from_ns(50.0),
            switch_wire: SimDuration::from_ns(50.0),
            global_wire: SimDuration::from_ns(82.5),
            bandwidth_gbps: 1.6,
            congestion_ns_per_queued: 2.0,
            congestion_cap: 32,
        }
    }

    /// The SC45's Quadrics-style cluster interconnect: user-level messaging
    /// costs microseconds, bandwidth ~0.32 GB/s per rail.
    pub fn sc45_cluster() -> Self {
        LinkTiming {
            router_latency: SimDuration::from_ns(300.0),
            module_wire: SimDuration::from_ns(50.0),
            board_wire: SimDuration::from_ns(50.0),
            cable_wire: SimDuration::from_ns(50.0),
            switch_wire: SimDuration::from_ns(60.0),
            global_wire: SimDuration::from_ns(900.0),
            bandwidth_gbps: 0.32,
            congestion_ns_per_queued: 10.0,
            congestion_cap: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_latency_orders_by_reach() {
        let t = LinkTiming::ev7_torus();
        assert!(t.wire(LinkClass::Module) < t.wire(LinkClass::Board));
        assert!(t.wire(LinkClass::Board) < t.wire(LinkClass::Cable));
        assert_eq!(t.wire(LinkClass::Shuffle), t.wire(LinkClass::Cable));
    }

    #[test]
    fn ev7_hop_costs_match_fig13_fit() {
        let t = LinkTiming::ev7_torus();
        assert_eq!(t.hop(LinkClass::Module).as_ns(), 17.5);
        assert_eq!(t.hop(LinkClass::Board).as_ns(), 20.5);
        assert_eq!(t.hop(LinkClass::Cable).as_ns(), 25.0);
    }

    #[test]
    fn gs320_hops_match_fig12_fit() {
        let t = LinkTiming::gs320_switch();
        assert_eq!(t.hop(LinkClass::QbbLocal).as_ns(), 75.0);
        assert_eq!(t.hop(LinkClass::QbbGlobal).as_ns(), 107.5);
    }

    #[test]
    fn machines_rank_as_in_the_paper() {
        let ev7 = LinkTiming::ev7_torus();
        let gs320 = LinkTiming::gs320_switch();
        let sc45 = LinkTiming::sc45_cluster();
        assert!(ev7.router_latency < gs320.router_latency);
        assert!(gs320.router_latency < sc45.router_latency);
        assert!(ev7.bandwidth_gbps > gs320.bandwidth_gbps);
        assert!(gs320.bandwidth_gbps > sc45.bandwidth_gbps);
    }
}
