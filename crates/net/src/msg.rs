//! Messages and coherence classes.

use alphasim_kernel::SimTime;
use alphasim_telemetry::HopBreakdown;
use alphasim_topology::NodeId;
use serde::{Deserialize, Serialize};

/// Coherence class of a packet (paper §2). Each class travels in its own
/// virtual channels so that "a Response packet can never block behind a
/// Request packet"; the class order is acyclic — a Request can generate a
/// Block Response, but a Block Response cannot generate a Request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MessageClass {
    /// I/O packets (lowest priority; excluded from the adaptive channel).
    Io,
    /// Requests from a CPU to a directory.
    Request,
    /// Forwards from a directory to an owner/sharers.
    Forward,
    /// Block responses carrying data (drain ahead of everything they could
    /// block behind).
    BlockResponse,
    /// Short protocol specials (highest priority).
    Special,
}

impl MessageClass {
    /// All classes, lowest priority first.
    pub const ALL: [MessageClass; 5] = [
        MessageClass::Io,
        MessageClass::Request,
        MessageClass::Forward,
        MessageClass::BlockResponse,
        MessageClass::Special,
    ];

    /// Arbitration priority (higher wins the output port).
    pub fn priority(self) -> u8 {
        match self {
            MessageClass::Io => 0,
            MessageClass::Request => 1,
            MessageClass::Forward => 2,
            MessageClass::BlockResponse => 3,
            MessageClass::Special => 4,
        }
    }

    /// The classes a packet of this class may *cause* to be sent. The
    /// relation is acyclic (checked in tests), which is the protocol-level
    /// half of the 21364's deadlock-freedom argument.
    pub fn may_generate(self) -> &'static [MessageClass] {
        match self {
            MessageClass::Request => &[MessageClass::Forward, MessageClass::BlockResponse],
            MessageClass::Forward => &[MessageClass::BlockResponse, MessageClass::Special],
            MessageClass::BlockResponse => &[],
            MessageClass::Special => &[],
            MessageClass::Io => &[MessageClass::Io],
        }
    }

    /// Whether packets of this class may use the Adaptive channel
    /// ("any message other than I/O packets").
    pub fn may_route_adaptively(self) -> bool {
        !matches!(self, MessageClass::Io)
    }

    /// Short display name, used as trace-event and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            MessageClass::Io => "Io",
            MessageClass::Request => "Request",
            MessageClass::Forward => "Forward",
            MessageClass::BlockResponse => "BlockResponse",
            MessageClass::Special => "Special",
        }
    }
}

/// Identifier of an in-flight or delivered message.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MessageId(pub(crate) u32);

impl MessageId {
    /// Dense index of this message.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A delivered message, handed back by [`NetworkSim::step`].
///
/// [`NetworkSim::step`]: crate::NetworkSim::step
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Delivery {
    /// The message's id.
    pub id: MessageId,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Coherence class.
    pub class: MessageClass,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Caller-supplied correlation tag.
    pub tag: u64,
    /// Injection time.
    pub injected_at: SimTime,
    /// Delivery time.
    pub delivered_at: SimTime,
    /// Hops traversed.
    pub hops: u32,
    /// Per-stage latency attribution accumulated over the route. For a
    /// message never evicted off a failed link the stages sum exactly to
    /// [`latency`](Self::latency) (integer picoseconds, no rounding).
    pub breakdown: HopBreakdown,
}

impl Delivery {
    /// End-to-end network latency.
    pub fn latency(&self) -> alphasim_kernel::SimDuration {
        self.delivered_at.since(self.injected_at)
    }
}

/// A message lost to a live link failure while occupying the failed wire,
/// handed back by [`NetworkSim::step`] so the coherence layer can retry it.
///
/// [`NetworkSim::step`]: crate::NetworkSim::step
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DroppedMsg {
    /// The message's id (its slot is recycled after this report).
    pub id: MessageId,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Coherence class.
    pub class: MessageClass,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Caller-supplied correlation tag.
    pub tag: u64,
    /// Injection time.
    pub injected_at: SimTime,
    /// When the loss was observed.
    pub dropped_at: SimTime,
    /// Hops traversed before the loss.
    pub hops: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_are_distinct_and_ordered() {
        let mut ps: Vec<u8> = MessageClass::ALL.iter().map(|c| c.priority()).collect();
        let sorted = ps.clone();
        ps.sort_unstable();
        assert_eq!(ps, sorted, "ALL must be lowest-priority-first");
        ps.dedup();
        assert_eq!(ps.len(), 5);
        assert!(MessageClass::BlockResponse.priority() > MessageClass::Request.priority());
    }

    #[test]
    fn generation_relation_is_acyclic() {
        // DFS from every class; no class may be reachable from itself
        // (ignoring Io's self-loop, which rides a disjoint channel set and
        // cannot hold coherence traffic).
        fn reaches(from: MessageClass, to: MessageClass, depth: u8) -> bool {
            if depth == 0 {
                return false;
            }
            from.may_generate()
                .iter()
                .any(|&n| n == to || reaches(n, to, depth - 1))
        }
        for &c in &[
            MessageClass::Request,
            MessageClass::Forward,
            MessageClass::BlockResponse,
            MessageClass::Special,
        ] {
            assert!(!reaches(c, c, 5), "{c:?} can regenerate itself");
        }
        // The paper's specific statement: a Request can generate a Block
        // Response, but a Block Response cannot generate a Request.
        assert!(reaches(
            MessageClass::Request,
            MessageClass::BlockResponse,
            5
        ));
        assert!(!reaches(
            MessageClass::BlockResponse,
            MessageClass::Request,
            5
        ));
    }

    #[test]
    fn io_is_excluded_from_adaptive_channel() {
        assert!(!MessageClass::Io.may_route_adaptively());
        assert!(MessageClass::Request.may_route_adaptively());
        assert!(MessageClass::BlockResponse.may_route_adaptively());
    }
}
