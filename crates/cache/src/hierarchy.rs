//! A two-level cache hierarchy that assigns a latency to every load.
//!
//! This is the engine behind the dependent-load figures (Figs. 4–5): a load
//! probes L1, then L2, and on an L2 miss is charged the caller-supplied
//! memory latency. The caller (the machine model in `alphasim-system`)
//! decides what "memory" costs — local open/closed page, or a remote
//! coherence transaction.

use alphasim_kernel::SimDuration;
use serde::{Deserialize, Serialize};

use crate::geometry::{Addr, CacheGeometry};
use crate::set_assoc::SetAssocCache;

/// Which level of the hierarchy served a load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HitLevel {
    /// Served by the L1 data cache.
    L1,
    /// Served by the L2 (on-chip 1.75 MB on EV7; off-chip 16 MB B-cache on
    /// EV68 machines).
    L2,
    /// Missed all caches; served by the memory system.
    Memory,
}

/// The result of one load: where it hit and what it cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadOutcome {
    /// The level that served the load.
    pub level: HitLevel,
    /// Load-to-use latency, including the caller-supplied memory latency
    /// for [`HitLevel::Memory`].
    pub latency: SimDuration,
}

/// Geometry and load-to-use latency of both cache levels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 data-cache geometry.
    pub l1: CacheGeometry,
    /// L1 load-to-use latency.
    pub l1_latency: SimDuration,
    /// L2 geometry.
    pub l2: CacheGeometry,
    /// L2 load-to-use latency.
    pub l2_latency: SimDuration,
}

impl HierarchyConfig {
    /// The EV7 (GS1280) hierarchy: 64 KB 2-way L1 at 3 cycles of 1.15 GHz;
    /// 1.75 MB 7-way on-chip L2 at 12 cycles = 10.4 ns (paper §2).
    pub fn ev7() -> Self {
        HierarchyConfig {
            l1: CacheGeometry::alpha_l1d(),
            l1_latency: SimDuration::from_ns(2.6), // 3 cycles @ 1.15 GHz
            l2: CacheGeometry::ev7_l2(),
            l2_latency: SimDuration::from_ns(10.4),
        }
    }

    /// The EV68 (ES45/GS320) hierarchy: same core L1; 16 MB direct-mapped
    /// *off-chip* B-cache at roughly 24 ns load-to-use (fitted to the
    /// 1.75 MB–16 MB plateau of the paper's Fig. 4).
    pub fn ev68() -> Self {
        HierarchyConfig {
            l1: CacheGeometry::alpha_l1d(),
            l1_latency: SimDuration::from_ns(2.4), // 3 cycles @ 1.25 GHz
            l2: CacheGeometry::ev68_bcache(),
            l2_latency: SimDuration::from_ns(24.0),
        }
    }
}

/// A two-level, inclusive-fill cache hierarchy.
///
/// # Examples
///
/// ```
/// use alphasim_cache::{Addr, CacheHierarchy, HierarchyConfig, HitLevel};
/// use alphasim_kernel::SimDuration;
///
/// let mut h = CacheHierarchy::new(HierarchyConfig::ev7());
/// let mem = SimDuration::from_ns(83.0); // local open-page RDRAM
/// let first = h.load(Addr::new(0x40), mem);
/// assert_eq!(first.level, HitLevel::Memory);
/// let second = h.load(Addr::new(0x40), mem);
/// assert_eq!(second.level, HitLevel::L1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    l1: SetAssocCache,
    l2: SetAssocCache,
    memory_loads: u64,
}

impl CacheHierarchy {
    /// An empty hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        CacheHierarchy {
            config,
            l1: SetAssocCache::new(config.l1),
            l2: SetAssocCache::new(config.l2),
            memory_loads: 0,
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Perform a load; a miss in both levels costs `memory_latency` and
    /// fills both levels.
    pub fn load(&mut self, addr: Addr, memory_latency: SimDuration) -> LoadOutcome {
        if self.l1.access(addr).hit {
            return LoadOutcome {
                level: HitLevel::L1,
                latency: self.config.l1_latency,
            };
        }
        if self.l2.access(addr).hit {
            return LoadOutcome {
                level: HitLevel::L2,
                latency: self.config.l2_latency,
            };
        }
        self.memory_loads += 1;
        LoadOutcome {
            level: HitLevel::Memory,
            latency: memory_latency,
        }
    }

    /// Perform a store (write-allocate, write-back): like [`load`] but the
    /// line is left dirty in both levels, and a dirty L2 victim counts as a
    /// write-back.
    ///
    /// [`load`]: Self::load
    pub fn store(&mut self, addr: Addr, memory_latency: SimDuration) -> LoadOutcome {
        if self.l1.access_write(addr).hit {
            return LoadOutcome {
                level: HitLevel::L1,
                latency: self.config.l1_latency,
            };
        }
        if self.l2.access_write(addr).hit {
            return LoadOutcome {
                level: HitLevel::L2,
                latency: self.config.l2_latency,
            };
        }
        self.memory_loads += 1;
        LoadOutcome {
            level: HitLevel::Memory,
            latency: memory_latency,
        }
    }

    /// Dirty L2 victims written back to memory so far.
    pub fn writebacks(&self) -> u64 {
        self.l2.writebacks()
    }

    /// Whether `addr` would hit somewhere without changing any state.
    pub fn probe(&self, addr: Addr) -> Option<HitLevel> {
        if self.l1.probe(addr) {
            Some(HitLevel::L1)
        } else if self.l2.probe(addr) {
            Some(HitLevel::L2)
        } else {
            None
        }
    }

    /// Invalidate a line everywhere (used by coherence invalidations).
    pub fn invalidate(&mut self, addr: Addr) {
        self.l1.invalidate(addr);
        self.l2.invalidate(addr);
    }

    /// Empty both levels and reset statistics.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.memory_loads = 0;
    }

    /// Loads that reached memory since construction/flush.
    pub fn memory_loads(&self) -> u64 {
        self.memory_loads
    }

    /// The L2 miss ratio observed so far.
    pub fn l2_miss_ratio(&self) -> f64 {
        self.l2.miss_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> SimDuration {
        SimDuration::from_ns(83.0)
    }

    #[test]
    fn load_walks_down_the_hierarchy() {
        let mut h = CacheHierarchy::new(HierarchyConfig::ev7());
        let a = Addr::new(0x1000);
        let first = h.load(a, mem());
        assert_eq!(first.level, HitLevel::Memory);
        assert_eq!(first.latency, mem());
        assert_eq!(h.load(a, mem()).level, HitLevel::L1);
        assert_eq!(h.memory_loads(), 1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = CacheHierarchy::new(HierarchyConfig::ev7());
        let a = Addr::new(0);
        h.load(a, mem());
        // Evict `a` from L1 by filling its set (2-way, 512 sets, 64B lines):
        // lines 512 and 1024 map to set 0 like line 0.
        let l1_sets = h.config().l1.sets();
        h.load(Addr::new(l1_sets * 64), mem());
        h.load(Addr::new(2 * l1_sets * 64), mem());
        let back = h.load(a, mem());
        assert_eq!(back.level, HitLevel::L2);
        assert_eq!(back.latency, h.config().l2_latency);
    }

    #[test]
    fn working_set_sizes_select_levels() {
        // A 32 KB working set lives in L1; 512 KB in L2; 4 MB in memory
        // (EV7 geometry). Stream each twice, check the second sweep.
        for (bytes, expected) in [
            (32 * 1024u64, HitLevel::L1),
            (512 * 1024, HitLevel::L2),
            (4 * 1024 * 1024, HitLevel::Memory),
        ] {
            let mut h = CacheHierarchy::new(HierarchyConfig::ev7());
            let lines = bytes / 64;
            for _ in 0..2 {
                for i in 0..lines {
                    h.load(Addr::new(i * 64), mem());
                }
            }
            // Sample the second sweep's outcome via a fresh pass probe.
            let outcome = h.load(Addr::new(0), mem());
            assert_eq!(outcome.level, expected, "{bytes} B working set");
        }
    }

    #[test]
    fn ev68_has_bigger_but_slower_l2() {
        let ev7 = HierarchyConfig::ev7();
        let ev68 = HierarchyConfig::ev68();
        assert!(ev68.l2.size_bytes() > ev7.l2.size_bytes());
        assert!(ev68.l2_latency > ev7.l2_latency);
        // The paper's crossover: an 8 MB working set fits the EV68 B-cache
        // but not the EV7 L2.
        assert!(8 * 1024 * 1024 < ev68.l2.size_bytes());
        assert!(8 * 1024 * 1024 > ev7.l2.size_bytes());
    }

    #[test]
    fn invalidate_forces_memory_reload() {
        let mut h = CacheHierarchy::new(HierarchyConfig::ev7());
        let a = Addr::new(0x2000);
        h.load(a, mem());
        assert_eq!(h.probe(a), Some(HitLevel::L1));
        h.invalidate(a);
        assert_eq!(h.probe(a), None);
        assert_eq!(h.load(a, mem()).level, HitLevel::Memory);
    }

    #[test]
    fn flush_resets() {
        let mut h = CacheHierarchy::new(HierarchyConfig::ev7());
        h.load(Addr::new(0), mem());
        h.flush();
        assert_eq!(h.memory_loads(), 0);
        assert_eq!(h.probe(Addr::new(0)), None);
    }
}

#[cfg(test)]
mod store_tests {
    use super::*;

    #[test]
    fn store_sweep_beyond_l2_generates_writebacks() {
        let mut h = CacheHierarchy::new(HierarchyConfig::ev7());
        let mem = SimDuration::from_ns(83.0);
        let l2_lines = HierarchyConfig::ev7().l2.size_bytes() / 64;
        for i in 0..2 * l2_lines {
            h.store(Addr::new(i * 64), mem);
        }
        assert!(h.writebacks() > l2_lines / 2, "{}", h.writebacks());
    }

    #[test]
    fn load_sweep_generates_no_writebacks() {
        let mut h = CacheHierarchy::new(HierarchyConfig::ev7());
        let mem = SimDuration::from_ns(83.0);
        for i in 0..100_000u64 {
            h.load(Addr::new(i * 64), mem);
        }
        assert_eq!(h.writebacks(), 0);
    }

    #[test]
    fn store_hits_are_l1_fast() {
        let mut h = CacheHierarchy::new(HierarchyConfig::ev7());
        let mem = SimDuration::from_ns(83.0);
        let a = Addr::new(0x100);
        h.store(a, mem);
        let again = h.store(a, mem);
        assert_eq!(again.level, HitLevel::L1);
    }
}
