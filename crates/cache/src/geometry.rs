//! Cache geometry and physical addresses.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A physical byte address.
///
/// # Examples
///
/// ```
/// use alphasim_cache::Addr;
/// let a = Addr::new(0x1040);
/// assert_eq!(a.line(64), 0x41);
/// assert_eq!(a.get(), 0x1040);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(u64);

impl Addr {
    /// An address from its byte value.
    pub const fn new(a: u64) -> Self {
        Addr(a)
    }

    /// The raw byte address.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The cache-line number for a given line size.
    pub fn line(self, line_bytes: u64) -> u64 {
        self.0 / line_bytes
    }

    /// Offset the address by `delta` bytes.
    pub fn offset(self, delta: u64) -> Addr {
        Addr(self.0.wrapping_add(delta))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(a: u64) -> Self {
        Addr(a)
    }
}

/// Size, line size, and associativity of one cache level.
///
/// # Examples
///
/// ```
/// use alphasim_cache::CacheGeometry;
/// let g = CacheGeometry::ev7_l2();
/// assert_eq!(g.size_bytes(), 1_835_008); // 1.75 MB
/// assert_eq!(g.ways(), 7);
/// assert_eq!(g.sets(), 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    size_bytes: u64,
    line_bytes: u64,
    ways: u32,
}

impl CacheGeometry {
    /// A geometry from total size, line size and way count.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two, `ways >= 1`, and
    /// `size_bytes` is an exact multiple of `ways * line_bytes` with a
    /// power-of-two set count.
    pub fn new(size_bytes: u64, line_bytes: u64, ways: u32) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(ways >= 1, "need at least one way");
        let way_bytes = u64::from(ways) * line_bytes;
        assert!(
            size_bytes.is_multiple_of(way_bytes),
            "size must divide into ways x lines"
        );
        let sets = size_bytes / way_bytes;
        assert!(sets.is_power_of_two(), "set count must be 2^k, got {sets}");
        CacheGeometry {
            size_bytes,
            line_bytes,
            ways,
        }
    }

    /// The EV7's on-chip L2: 1.75 MB, 7-way, 64-byte lines (paper §2).
    pub fn ev7_l2() -> Self {
        CacheGeometry::new(7 * 256 * 1024, 64, 7)
    }

    /// The EV68 off-chip B-cache on GS320/ES45: 16 MB direct-mapped.
    pub fn ev68_bcache() -> Self {
        CacheGeometry::new(16 * 1024 * 1024, 64, 1)
    }

    /// The 21264-family L1 data cache: 64 KB, 2-way.
    pub fn alpha_l1d() -> Self {
        CacheGeometry::new(64 * 1024, 64, 2)
    }

    /// Total capacity in bytes.
    pub fn size_bytes(self) -> u64 {
        self.size_bytes
    }

    /// Cache-line size in bytes.
    pub fn line_bytes(self) -> u64 {
        self.line_bytes
    }

    /// Associativity.
    pub fn ways(self) -> u32 {
        self.ways
    }

    /// Number of sets.
    pub fn sets(self) -> u64 {
        self.size_bytes / (u64::from(self.ways) * self.line_bytes)
    }

    /// The set index an address maps to.
    pub fn set_of(self, addr: Addr) -> u64 {
        addr.line(self.line_bytes) % self.sets()
    }

    /// The tag of an address (the line number above the set index).
    pub fn tag_of(self, addr: Addr) -> u64 {
        addr.line(self.line_bytes) / self.sets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_line_and_offset() {
        let a = Addr::new(130);
        assert_eq!(a.line(64), 2);
        assert_eq!(a.offset(64).line(64), 3);
        assert_eq!(Addr::from(5u64).get(), 5);
        assert_eq!(format!("{}", Addr::new(16)), "0x10");
    }

    #[test]
    fn ev7_l2_geometry() {
        let g = CacheGeometry::ev7_l2();
        assert_eq!(g.size_bytes(), 1_835_008);
        assert_eq!(g.line_bytes(), 64);
        assert_eq!(g.ways(), 7);
        assert_eq!(g.sets(), 4096);
    }

    #[test]
    fn bcache_geometry() {
        let g = CacheGeometry::ev68_bcache();
        assert_eq!(g.ways(), 1);
        assert_eq!(g.sets(), 16 * 1024 * 1024 / 64);
    }

    #[test]
    fn set_and_tag_partition_the_line_number() {
        let g = CacheGeometry::new(8 * 1024, 64, 2); // 64 sets
        for line in 0..1000u64 {
            let a = Addr::new(line * 64 + 13);
            assert_eq!(g.set_of(a), line % 64);
            assert_eq!(g.tag_of(a), line / 64);
        }
    }

    #[test]
    fn addresses_in_same_line_share_set_and_tag() {
        let g = CacheGeometry::ev7_l2();
        let base = Addr::new(0xABCDE0 & !63);
        for off in 0..64 {
            assert_eq!(g.set_of(base.offset(off)), g.set_of(base));
            assert_eq!(g.tag_of(base.offset(off)), g.tag_of(base));
        }
    }

    #[test]
    #[should_panic(expected = "set count must be 2^k")]
    fn rejects_non_power_of_two_sets() {
        let _ = CacheGeometry::new(3 * 64 * 5, 64, 1);
    }

    #[test]
    #[should_panic(expected = "line size must be 2^k")]
    fn rejects_odd_line_size() {
        let _ = CacheGeometry::new(1024, 48, 1);
    }
}
