//! The EV7's bound on outstanding misses.
//!
//! The 21364 provides 16 victim buffers from L1 to L2 and from L2 to memory
//! (paper §2); together with the miss-address file this caps the
//! memory-level parallelism one CPU can expose. The streaming-bandwidth
//! experiments (STREAM, Figs. 6–7) are shaped by this limit: sustained
//! bandwidth ≈ outstanding-lines × line-size / round-trip-latency, clamped
//! by the controller peak.

use alphasim_kernel::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Tracks in-flight misses against a fixed buffer budget.
///
/// # Examples
///
/// ```
/// use alphasim_cache::MissTracker;
/// use alphasim_kernel::{SimTime, SimDuration};
///
/// let mut t = MissTracker::new(16);
/// let now = SimTime::ZERO;
/// let done = now + SimDuration::from_ns(83.0);
/// assert!(t.try_issue(now, done));
/// assert_eq!(t.in_flight(now), 1);
/// assert_eq!(t.in_flight(done), 0); // completed by then
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MissTracker {
    capacity: usize,
    /// Completion times of in-flight misses (unsorted).
    completions: Vec<SimTime>,
    issued: u64,
    rejected: u64,
}

impl MissTracker {
    /// The EV7's victim-buffer count.
    pub const EV7_VICTIM_BUFFERS: usize = 16;

    /// A tracker allowing up to `capacity` concurrent misses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "need at least one buffer");
        MissTracker {
            capacity,
            completions: Vec::with_capacity(capacity),
            issued: 0,
            rejected: 0,
        }
    }

    /// The buffer budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drop records of misses that completed at or before `now`.
    fn retire(&mut self, now: SimTime) {
        self.completions.retain(|&c| c > now);
    }

    /// Misses still outstanding at `now`.
    pub fn in_flight(&mut self, now: SimTime) -> usize {
        self.retire(now);
        self.completions.len()
    }

    /// Try to issue a miss at `now` completing at `done`; `false` (and a
    /// rejection count) if all buffers are occupied.
    ///
    /// # Panics
    ///
    /// Panics if `done < now`.
    pub fn try_issue(&mut self, now: SimTime, done: SimTime) -> bool {
        assert!(done >= now, "completion before issue");
        self.retire(now);
        if self.completions.len() >= self.capacity {
            self.rejected += 1;
            return false;
        }
        self.completions.push(done);
        self.issued += 1;
        true
    }

    /// Earliest time a buffer frees up (valid when full at `now`).
    pub fn next_free(&mut self, now: SimTime) -> SimTime {
        self.retire(now);
        self.completions.iter().copied().min().unwrap_or(now)
    }

    /// Total misses issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Issue attempts rejected for lack of buffers.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Steady-state bandwidth (bytes/s) achievable with this tracker when
    /// each miss moves `line_bytes` and takes `round_trip`:
    /// Little's law, `capacity × line / latency`.
    pub fn streaming_bandwidth_gbps(&self, line_bytes: u64, round_trip: SimDuration) -> f64 {
        let per_miss_secs = round_trip.as_secs();
        if per_miss_secs == 0.0 {
            return f64::INFINITY;
        }
        self.capacity as f64 * line_bytes as f64 / per_miss_secs / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    #[test]
    fn fills_to_capacity_then_rejects() {
        let mut mt = MissTracker::new(4);
        for i in 0..4 {
            assert!(mt.try_issue(t(0.0), t(100.0 + i as f64)));
        }
        assert!(!mt.try_issue(t(0.0), t(100.0)));
        assert_eq!(mt.rejected(), 1);
        assert_eq!(mt.issued(), 4);
    }

    #[test]
    fn completion_frees_buffers() {
        let mut mt = MissTracker::new(2);
        assert!(mt.try_issue(t(0.0), t(50.0)));
        assert!(mt.try_issue(t(0.0), t(80.0)));
        assert!(!mt.try_issue(t(10.0), t(90.0)));
        // At 50ns the first miss retires.
        assert!(mt.try_issue(t(50.0), t(120.0)));
        assert_eq!(mt.in_flight(t(50.0)), 2);
        assert_eq!(mt.in_flight(t(200.0)), 0);
    }

    #[test]
    fn next_free_is_earliest_completion() {
        let mut mt = MissTracker::new(2);
        mt.try_issue(t(0.0), t(70.0));
        mt.try_issue(t(0.0), t(30.0));
        assert_eq!(mt.next_free(t(0.0)), t(30.0));
        assert_eq!(mt.next_free(t(40.0)), t(70.0));
    }

    #[test]
    fn littles_law_bandwidth() {
        let mt = MissTracker::new(16);
        // 16 x 64B / 83ns = 12.3 GB/s — not coincidentally the EV7's
        // victim buffering roughly covers its local memory latency.
        let bw = mt.streaming_bandwidth_gbps(64, SimDuration::from_ns(83.0));
        assert!((bw - 12.337).abs() < 0.01, "got {bw}");
    }

    #[test]
    #[should_panic(expected = "completion before issue")]
    fn rejects_time_travel() {
        let mut mt = MissTracker::new(1);
        mt.try_issue(t(10.0), t(5.0));
    }
}
