//! A functional set-associative cache with true-LRU replacement.

use serde::{Deserialize, Serialize};

use crate::geometry::{Addr, CacheGeometry};

/// The outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessResult {
    /// Whether the line was present.
    pub hit: bool,
    /// The line number (in units of the line size) of a line evicted to
    /// make room, if the fill displaced one.
    pub evicted_line: Option<u64>,
    /// Whether the evicted line was dirty (must be written back — the
    /// write-back traffic STREAM's `moved_bytes` accounts for).
    pub evicted_dirty: bool,
}

/// A set-associative cache with LRU replacement, tracking tags only (a
/// *functional* model: it answers hit/miss questions, it does not hold
/// data).
///
/// Accesses allocate on miss (read-allocate; the reproduced experiments are
/// latency/bandwidth studies over loads, with stores modelled as allocating
/// too, matching the write-back write-allocate Alpha caches).
///
/// # Examples
///
/// ```
/// use alphasim_cache::{Addr, CacheGeometry, SetAssocCache};
/// let mut c = SetAssocCache::new(CacheGeometry::new(1024, 64, 2));
/// assert!(!c.access(Addr::new(0)).hit);   // cold miss
/// assert!(c.access(Addr::new(32)).hit);   // same line
/// assert_eq!(c.hits(), 1);
/// assert_eq!(c.misses(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    /// Per set: `(tag, dirty)` in LRU order, most recently used last.
    sets: Vec<Vec<(u64, bool)>>,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl SetAssocCache {
    /// An empty cache of the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        SetAssocCache {
            geometry,
            sets: vec![Vec::new(); geometry.sets() as usize],
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Access `addr` with a load, allocating its line (clean) on a miss.
    pub fn access(&mut self, addr: Addr) -> AccessResult {
        self.reference(addr, false)
    }

    /// Access `addr` with a store, allocating (write-allocate) and marking
    /// the line dirty.
    pub fn access_write(&mut self, addr: Addr) -> AccessResult {
        self.reference(addr, true)
    }

    fn reference(&mut self, addr: Addr, write: bool) -> AccessResult {
        let set_idx = self.geometry.set_of(addr) as usize;
        let tag = self.geometry.tag_of(addr);
        let ways = self.geometry.ways() as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&(t, _)| t == tag) {
            let (t, dirty) = set.remove(pos);
            set.push((t, dirty || write));
            self.hits += 1;
            return AccessResult {
                hit: true,
                evicted_line: None,
                evicted_dirty: false,
            };
        }
        self.misses += 1;
        let (evicted, evicted_dirty) = if set.len() == ways {
            let (victim_tag, dirty) = set.remove(0);
            if dirty {
                self.writebacks += 1;
            }
            (
                Some(victim_tag * self.geometry.sets() + set_idx as u64),
                dirty,
            )
        } else {
            (None, false)
        };
        set.push((tag, write));
        AccessResult {
            hit: false,
            evicted_line: evicted,
            evicted_dirty,
        }
    }

    /// Whether `addr`'s line is currently resident (no LRU update, no fill).
    pub fn probe(&self, addr: Addr) -> bool {
        let set = &self.sets[self.geometry.set_of(addr) as usize];
        let tag = self.geometry.tag_of(addr);
        set.iter().any(|&(t, _)| t == tag)
    }

    /// Whether `addr`'s line is resident *and dirty*.
    pub fn probe_dirty(&self, addr: Addr) -> bool {
        let set = &self.sets[self.geometry.set_of(addr) as usize];
        let tag = self.geometry.tag_of(addr);
        set.iter().any(|&(t, d)| t == tag && d)
    }

    /// Invalidate `addr`'s line if resident; reports whether it was.
    pub fn invalidate(&mut self, addr: Addr) -> bool {
        let set_idx = self.geometry.set_of(addr) as usize;
        let tag = self.geometry.tag_of(addr);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&(t, _)| t == tag) {
            set.remove(pos);
            true
        } else {
            false
        }
    }

    /// Drop every line and reset statistics.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Hits since construction or [`flush`](Self::flush).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses since construction or [`flush`](Self::flush).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty lines written back on eviction so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Miss ratio (0 when no accesses yet).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways x 64B lines = 256 B.
        SetAssocCache::new(CacheGeometry::new(256, 64, 2))
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even line numbers).
        let a = Addr::new(0);
        let b = Addr::new(2 * 64);
        let d = Addr::new(4 * 64);
        c.access(a);
        c.access(b);
        c.access(a); // a is now MRU
        let r = c.access(d); // evicts b
        assert_eq!(r.evicted_line, Some(2));
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = tiny();
        for i in 0..100 {
            c.access(Addr::new(i * 64));
        }
        assert!(c.resident_lines() <= 4);
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = SetAssocCache::new(CacheGeometry::new(128, 64, 1)); // 2 sets
        let a = Addr::new(0);
        let conflicting = Addr::new(2 * 64); // same set, different tag
        c.access(a);
        c.access(conflicting);
        assert!(!c.probe(a), "direct-mapped conflict must evict");
        // Ping-pong: every access misses.
        c.flush();
        for _ in 0..10 {
            assert!(!c.access(a).hit);
            assert!(!c.access(conflicting).hit);
        }
        assert_eq!(c.misses(), 20);
    }

    #[test]
    fn seven_way_holds_seven_conflicting_lines() {
        let mut c = SetAssocCache::new(CacheGeometry::ev7_l2());
        let sets = c.geometry().sets();
        // 7 lines all mapping to set 0.
        for i in 0..7u64 {
            c.access(Addr::new(i * sets * 64));
        }
        for i in 0..7u64 {
            assert!(c.probe(Addr::new(i * sets * 64)), "way {i} lost");
        }
        // An 8th conflicting line evicts the LRU (line 0).
        c.access(Addr::new(7 * sets * 64));
        assert!(!c.probe(Addr::new(0)));
    }

    #[test]
    fn working_set_within_capacity_stops_missing() {
        let mut c = SetAssocCache::new(CacheGeometry::new(64 * 1024, 64, 2));
        let lines = 64 * 1024 / 64;
        // Two full sweeps; second sweep must be all hits.
        for _ in 0..2 {
            for i in 0..lines {
                c.access(Addr::new(i * 64));
            }
        }
        assert_eq!(c.misses(), lines);
        assert_eq!(c.hits(), lines);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes_on_sweep() {
        // Sequential sweep of 2x the capacity with LRU: every access misses.
        let mut c = SetAssocCache::new(CacheGeometry::new(4096, 64, 2));
        let lines = 2 * 4096 / 64;
        for _ in 0..3 {
            for i in 0..lines {
                c.access(Addr::new(i * 64));
            }
        }
        assert_eq!(c.hits(), 0);
        assert!((c.miss_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        let a = Addr::new(64);
        c.access(a);
        assert!(c.invalidate(a));
        assert!(!c.probe(a));
        assert!(!c.invalidate(a));
    }

    #[test]
    fn flush_resets_everything() {
        let mut c = tiny();
        c.access(Addr::new(0));
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.hits() + c.misses(), 0);
        assert_eq!(c.miss_ratio(), 0.0);
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = tiny();
        let a = Addr::new(0);
        let b = Addr::new(2 * 64);
        c.access(a);
        c.access(b);
        // Probing `a` must NOT refresh it.
        assert!(c.probe(a));
        c.access(Addr::new(4 * 64)); // evicts LRU = a
        assert!(!c.probe(a));
        assert!(c.probe(b));
    }
}

#[cfg(test)]
mod dirty_tests {
    use super::*;

    #[test]
    fn stores_mark_lines_dirty_and_evictions_write_back() {
        let mut c = SetAssocCache::new(CacheGeometry::new(128, 64, 1)); // 2 sets
        let a = Addr::new(0);
        c.access_write(a);
        assert!(c.probe_dirty(a));
        // Conflicting fill evicts the dirty line: one write-back.
        let r = c.access(Addr::new(2 * 64));
        assert_eq!(r.evicted_line, Some(0));
        assert!(r.evicted_dirty);
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn clean_evictions_do_not_write_back() {
        let mut c = SetAssocCache::new(CacheGeometry::new(128, 64, 1));
        c.access(Addr::new(0));
        let r = c.access(Addr::new(2 * 64));
        assert!(!r.evicted_dirty);
        assert_eq!(c.writebacks(), 0);
    }

    #[test]
    fn read_after_write_keeps_dirty_bit() {
        let mut c = SetAssocCache::new(CacheGeometry::new(256, 64, 2));
        let a = Addr::new(64);
        c.access_write(a);
        c.access(a); // LRU refresh must not launder the dirty bit
        assert!(c.probe_dirty(a));
    }

    #[test]
    fn write_hit_dirties_a_clean_line() {
        let mut c = SetAssocCache::new(CacheGeometry::new(256, 64, 2));
        let a = Addr::new(0);
        c.access(a);
        assert!(!c.probe_dirty(a));
        assert!(c.access_write(a).hit);
        assert!(c.probe_dirty(a));
    }

    #[test]
    fn stream_like_write_stream_generates_one_writeback_per_line() {
        // A store sweep over 2x capacity: every line comes back out dirty.
        let mut c = SetAssocCache::new(CacheGeometry::new(1024, 64, 2));
        let lines = 2 * 1024 / 64;
        for i in 0..lines {
            c.access_write(Addr::new(i * 64));
        }
        // First `capacity` fills evict nothing; the rest evict dirty lines.
        assert_eq!(c.writebacks(), lines - 16);
    }
}
