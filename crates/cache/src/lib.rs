//! Cache models for the GS1280 reproduction.
//!
//! The paper's machines differ sharply in their cache hierarchies, and §3.1
//! shows this dominates where each one wins:
//!
//! * **GS1280 (21364/EV7)** — 1.75 MB, 7-way set-associative, *on-chip* L2
//!   with a 12-cycle (10.4 ns) load-to-use latency;
//! * **GS320 / ES45 (21264/EV68)** — 16 MB, direct-mapped, *off-chip* L2:
//!   bigger but much slower to reach.
//!
//! This crate provides a functional set-associative cache model
//! ([`SetAssocCache`]), a two-level hierarchy that walks loads through
//! L1 → L2 → memory ([`CacheHierarchy`]), and the EV7's victim-buffer limit
//! on outstanding misses ([`MissTracker`]) that caps memory-level
//! parallelism at 16.
//!
//! # Examples
//!
//! ```
//! use alphasim_cache::{Addr, CacheGeometry, SetAssocCache};
//!
//! // The EV7 on-chip L2.
//! let mut l2 = SetAssocCache::new(CacheGeometry::ev7_l2());
//! assert!(!l2.access(Addr::new(0x1000)).hit);
//! assert!(l2.access(Addr::new(0x1000)).hit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod geometry;
mod hierarchy;
mod set_assoc;
mod tracker;

pub use geometry::{Addr, CacheGeometry};
pub use hierarchy::{CacheHierarchy, HierarchyConfig, HitLevel, LoadOutcome};
pub use set_assoc::{AccessResult, SetAssocCache};
pub use tracker::MissTracker;
