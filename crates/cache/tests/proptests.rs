//! Property tests for the cache models.

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use alphasim_cache::{Addr, CacheGeometry, CacheHierarchy, HierarchyConfig, SetAssocCache};
use alphasim_kernel::SimDuration;
use proptest::prelude::*;

fn small_geometry() -> impl Strategy<Value = CacheGeometry> {
    // sets in {1,2,4,8,16}, ways 1..=8, 64B lines.
    (0u32..5, 1u32..=8).prop_map(|(s, w)| {
        let sets = 1u64 << s;
        CacheGeometry::new(sets * u64::from(w) * 64, 64, w)
    })
}

proptest! {
    /// Resident lines never exceed capacity, and a hit is always reported
    /// for the line just accessed.
    #[test]
    fn capacity_invariant(geometry in small_geometry(),
                          addrs in prop::collection::vec(0u64..1_000_000, 1..500)) {
        let mut c = SetAssocCache::new(geometry);
        let lines = (geometry.size_bytes() / geometry.line_bytes()) as usize;
        for &a in &addrs {
            let a = Addr::new(a);
            c.access(a);
            prop_assert!(c.probe(a), "just-accessed line must be resident");
            prop_assert!(c.resident_lines() <= lines);
        }
        prop_assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
    }

    /// Accessing the same line twice in a row always hits the second time.
    #[test]
    fn immediate_rereference_hits(geometry in small_geometry(), a in 0u64..1_000_000) {
        let mut c = SetAssocCache::new(geometry);
        c.access(Addr::new(a));
        prop_assert!(c.access(Addr::new(a)).hit);
    }

    /// A working set no larger than one set's ways never misses after the
    /// first pass, regardless of access order (true LRU has no thrash for
    /// fitting sets).
    #[test]
    fn fitting_working_set_stops_missing(ways in 2u32..=8, perm_seed in 0u64..1000) {
        let geometry = CacheGeometry::new(u64::from(ways) * 64, 64, ways); // 1 set
        let mut c = SetAssocCache::new(geometry);
        let mut order: Vec<u64> = (0..u64::from(ways)).collect();
        // Deterministic shuffle of the sweep order.
        let mut state = perm_seed;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (state as usize) % (i + 1));
        }
        for &l in &order { c.access(Addr::new(l * 64)); }
        for &l in &order {
            prop_assert!(c.access(Addr::new(l * 64)).hit);
        }
    }

    /// Hierarchy latencies are one of the three configured levels and the
    /// level ordering is respected.
    #[test]
    fn hierarchy_latency_levels(addrs in prop::collection::vec(0u64..100_000, 1..300)) {
        let cfg = HierarchyConfig::ev7();
        let mut h = CacheHierarchy::new(cfg);
        let mem = SimDuration::from_ns(83.0);
        for &a in &addrs {
            let out = h.load(Addr::new(a), mem);
            let l = out.latency;
            prop_assert!(l == cfg.l1_latency || l == cfg.l2_latency || l == mem);
        }
        prop_assert!(cfg.l1_latency < cfg.l2_latency);
        prop_assert!(cfg.l2_latency < mem);
    }

    /// Invalidation is precise: it removes exactly the named line.
    #[test]
    fn invalidate_is_precise(a in 0u64..10_000u64, b in 0u64..10_000u64) {
        let la = a * 64;
        let lb = b * 64;
        let mut h = CacheHierarchy::new(HierarchyConfig::ev7());
        let mem = SimDuration::from_ns(83.0);
        h.load(Addr::new(la), mem);
        h.load(Addr::new(lb), mem);
        h.invalidate(Addr::new(la));
        prop_assert!(h.probe(Addr::new(la)).is_none());
        if la != lb {
            prop_assert!(h.probe(Addr::new(lb)).is_some());
        }
    }
}
