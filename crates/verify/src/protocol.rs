//! The coherence protocol as a finite-state [`Model`].
//!
//! The transition relation is *extracted from the shipped code*, not
//! re-implemented: every `Deliver`/`Evict` transition seeds a real
//! [`Directory`] with the abstract line state, runs the real
//! [`Directory::access`]/[`Directory::evict`], and interprets the returned
//! [`Transaction`] legs to update each CPU's believed rights — exactly what
//! the machine model in `alphasim-system` does with those legs. The
//! timeout/NAK dimension mirrors `coherence::retry`: one outstanding
//! transaction per CPU with a bounded attempt counter, a pending-table
//! bitmask shadowing [`PendingSet`] membership, and a poison (NAK) terminal
//! past `max_retries` — the same `attempts > max_retries` threshold the
//! fault campaign's `retry_or_poison` uses.
//!
//! The abstraction tracks a single cache line with CPU 0 as its home.
//! Who is home does not affect the reachable sharing states (legs are
//! interpreted by *role*, not by distance), and lines are independent in
//! the shipped protocol, so the single-line space is the whole story.
//! A lost attempt is modeled as a request that never reached the home;
//! lost-response duplication is handled one layer up by tag dedup
//! ([`PendingSet::complete`] ignores duplicates) and is exercised by the
//! fault-campaign tests.
//!
//! [`Mutation`] seeds a protocol bug into the leg interpretation so tests
//! can prove the checker actually catches violations and prints a trace.
//!
//! [`PendingSet`]: alphasim_coherence::PendingSet
//! [`PendingSet::complete`]: alphasim_coherence::PendingSet::complete
//! [`Transaction`]: alphasim_coherence::Transaction

use std::collections::BTreeSet;

use alphasim_coherence::{AccessKind, Directory, LineState, RetryPolicy};
use alphasim_net::MessageClass;

use crate::mc::{Model, ReducibleModel};

/// Upper bound on modeled CPUs (the state arrays are fixed-size).
pub const MAX_CPUS: usize = 8;

/// The home node of the modeled line.
const HOME: usize = 0;

/// What a CPU's cache believes it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Right {
    /// No copy.
    Invalid,
    /// A read-only copy.
    Shared,
    /// A writable copy.
    Exclusive,
}

/// The kind of in-flight operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpKind {
    /// A load.
    Read,
    /// A store / read-modify.
    Write,
}

impl OpKind {
    fn access(self) -> AccessKind {
        match self {
            OpKind::Read => AccessKind::Read,
            OpKind::Write => AccessKind::Write,
        }
    }
}

/// Per-CPU transaction status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CpuOp {
    /// Nothing outstanding.
    Idle,
    /// An operation is outstanding; `attempts` counts issues so far
    /// (1 = the original send), as in [`PendingTx::attempts`].
    ///
    /// [`PendingTx::attempts`]: alphasim_coherence::PendingTx::attempts
    InFlight {
        /// Operation kind.
        kind: OpKind,
        /// Issue attempts so far.
        attempts: u8,
    },
    /// Poisoned (the NAK path): abandoned past `max_retries`, awaiting the
    /// CPU's acknowledgement.
    Poisoned {
        /// Operation kind.
        kind: OpKind,
    },
}

/// Abstract directory state of the modeled line (a compact mirror of
/// [`LineState`] using a CPU bitmask).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DirLine {
    /// Only memory holds the line.
    Uncached,
    /// Read-only copies at the set CPUs (bitmask, never empty).
    Shared(u8),
    /// One CPU holds the line writable.
    Exclusive(u8),
}

impl DirLine {
    fn to_line_state(self) -> LineState {
        match self {
            DirLine::Uncached => LineState::Uncached,
            DirLine::Shared(mask) => LineState::Shared(
                (0..MAX_CPUS)
                    .filter(|i| mask & (1 << i) != 0)
                    .collect::<BTreeSet<usize>>(),
            ),
            DirLine::Exclusive(o) => LineState::Exclusive(o as usize),
        }
    }

    fn from_line_state(state: &LineState) -> Self {
        match state {
            LineState::Uncached => DirLine::Uncached,
            LineState::Shared(s) => {
                let mut mask = 0u8;
                for &i in s {
                    assert!(i < MAX_CPUS, "sharer {i} out of model range");
                    mask |= 1 << i;
                }
                DirLine::Shared(mask)
            }
            LineState::Exclusive(o) => {
                assert!(*o < MAX_CPUS, "owner {o} out of model range");
                DirLine::Exclusive(*o as u8)
            }
        }
    }
}

/// One full system state: directory view, per-CPU believed rights, per-CPU
/// transaction status, and the pending-table membership bitmask.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ProtoState {
    /// The home directory's view of the line.
    pub dir: DirLine,
    /// Each CPU's believed rights (slots past `cpus` stay `Invalid`).
    pub caches: [Right; MAX_CPUS],
    /// Each CPU's transaction status.
    pub ops: [CpuOp; MAX_CPUS],
    /// Pending-table membership bitmask (mirrors `PendingSet` keys).
    pub pending: u8,
    /// Whether the path to the home is up. Always `true` unless the model
    /// was built with [`ProtocolModel::recovery`]; while down, no request
    /// completes (`Deliver` is disabled) and outstanding attempts keep
    /// striking out through the timeout/retry/poison machinery — the
    /// static mirror of the fault campaign's link cuts.
    pub link_ok: bool,
}

/// One enabled transition.
#[derive(Debug, Clone, Copy)]
pub enum ProtoAction {
    /// CPU issues a new operation (inserts its pending entry).
    Issue {
        /// Issuing CPU.
        cpu: u8,
        /// Operation kind.
        kind: OpKind,
    },
    /// The outstanding operation completes its full round trip: the real
    /// directory transition runs and the legs take effect atomically.
    Deliver {
        /// Requesting CPU.
        cpu: u8,
    },
    /// The outstanding attempt is lost before reaching the home; the CPU
    /// retries (attempts + 1) or, past `max_retries`, poisons.
    Timeout {
        /// Requesting CPU.
        cpu: u8,
    },
    /// The CPU acknowledges a poisoned operation and goes idle.
    AckPoison {
        /// Requesting CPU.
        cpu: u8,
    },
    /// The CPU evicts its copy (runs the real `Directory::evict`).
    Evict {
        /// Evicting CPU.
        cpu: u8,
    },
    /// The path to the home goes down (recovery models only): deliveries
    /// stop, timeouts keep firing.
    LinkFail,
    /// The path to the home comes back up (recovery models only).
    LinkRepair,
}

/// A protocol bug seeded into the leg interpretation, used by tests to
/// prove the checker catches violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// The shipped protocol, unmodified.
    None,
    /// Sharers ignore the invalidating Forward legs of a write — the
    /// classic stale-sharer bug.
    SkipInvalidations,
    /// The old owner ignores the Forward of a read-dirty and keeps its
    /// Exclusive copy instead of downgrading to Shared.
    StaleOwnerAfterForward,
    /// Poisoning a transaction forgets to remove its pending-table entry.
    PoisonLeaksPendingEntry,
    /// The NAK acknowledgement handler re-issues the abandoned operation
    /// instead of retiring it — the transaction comes back from the dead
    /// without re-inserting its pending entry.
    RetryAfterPoison,
    /// Link repair "helpfully" fast-completes a write that was stranded
    /// in flight, granting Exclusive without running the directory — the
    /// repair path racing a pending invalidation.
    RepairRacesInvalidation,
}

impl Mutation {
    /// Stable identifier used in reports.
    pub fn id(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::SkipInvalidations => "skip-invalidations",
            Mutation::StaleOwnerAfterForward => "stale-owner-after-forward",
            Mutation::PoisonLeaksPendingEntry => "poison-leaks-pending-entry",
            Mutation::RetryAfterPoison => "retry-after-poison",
            Mutation::RepairRacesInvalidation => "repair-races-invalidation",
        }
    }

    /// Every seeded bug of the healthy-path protocol.
    pub const SEEDED: [Mutation; 3] = [
        Mutation::SkipInvalidations,
        Mutation::StaleOwnerAfterForward,
        Mutation::PoisonLeaksPendingEntry,
    ];

    /// Seeded bugs on the recovery path (checked with the fault-extended
    /// model — [`RepairRacesInvalidation`](Mutation::RepairRacesInvalidation)
    /// needs a link fault to arm).
    pub const RECOVERY_SEEDED: [Mutation; 2] = [
        Mutation::RetryAfterPoison,
        Mutation::RepairRacesInvalidation,
    ];
}

/// The protocol model for `cpus` CPUs sharing one line, with retries
/// bounded at `max_retries` (the poison threshold, as in [`RetryPolicy`]).
#[derive(Debug, Clone)]
pub struct ProtocolModel {
    /// Number of CPUs (2..=[`MAX_CPUS`]).
    pub cpus: usize,
    /// Retries allowed before an operation is poisoned.
    pub max_retries: u8,
    /// Seeded bug, [`Mutation::None`] for the shipped protocol.
    pub mutation: Mutation,
    /// Whether the link-fault dimension (LinkFail/LinkRepair) is enabled;
    /// `false` checks the healthy protocol only.
    pub faults: bool,
}

impl ProtocolModel {
    /// The shipped healthy-path protocol with `cpus` CPUs and
    /// `max_retries` retries.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= cpus <= MAX_CPUS`.
    pub fn new(cpus: usize, max_retries: u8) -> Self {
        assert!((2..=MAX_CPUS).contains(&cpus), "model supports 2..=8 CPUs");
        ProtocolModel {
            cpus,
            max_retries,
            mutation: Mutation::None,
            faults: false,
        }
    }

    /// The fault-extended recovery protocol: the healthy model plus the
    /// link-fault dimension, so every timeout-strike / poison / backoff /
    /// repair interleaving is explored.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= cpus <= MAX_CPUS`.
    pub fn recovery(cpus: usize, max_retries: u8) -> Self {
        ProtocolModel {
            faults: true,
            ..ProtocolModel::new(cpus, max_retries)
        }
    }

    /// The same configuration with a seeded bug.
    pub fn mutated(cpus: usize, max_retries: u8, mutation: Mutation) -> Self {
        ProtocolModel {
            mutation,
            ..ProtocolModel::new(cpus, max_retries)
        }
    }

    /// The fault-extended configuration with a seeded recovery-path bug.
    pub fn recovery_mutated(cpus: usize, max_retries: u8, mutation: Mutation) -> Self {
        ProtocolModel {
            mutation,
            ..ProtocolModel::recovery(cpus, max_retries)
        }
    }

    /// Run the real directory transition for `cpu`'s outstanding `kind`
    /// operation and interpret the resulting legs.
    fn deliver(&self, s: &ProtoState, cpu: usize, kind: OpKind) -> ProtoState {
        let mut dir = Directory::new();
        dir.seed_line(0, s.dir.to_line_state());
        let t = dir.access(HOME, cpu, 0, kind.access());
        let mut next = s.clone();
        // The requester gains the rights it asked for (a silent AlreadyHeld
        // means it already had them).
        match kind {
            OpKind::Read => {
                if next.caches[cpu] == Right::Invalid {
                    next.caches[cpu] = Right::Shared;
                }
            }
            OpKind::Write => next.caches[cpu] = Right::Exclusive,
        }
        // Forward legs act on the CPUs they target: a read's Forward
        // downgrades the old owner to Shared (it keeps a read-only copy);
        // a write's Forwards invalidate. Mutations drop exactly one of
        // these effects to seed a bug.
        for leg in &t.critical {
            if leg.class == MessageClass::Forward {
                match kind {
                    OpKind::Read => {
                        if self.mutation != Mutation::StaleOwnerAfterForward {
                            next.caches[leg.to] = Right::Shared;
                        }
                    }
                    OpKind::Write => next.caches[leg.to] = Right::Invalid,
                }
            }
        }
        for leg in &t.side {
            if leg.class == MessageClass::Forward && self.mutation != Mutation::SkipInvalidations {
                next.caches[leg.to] = Right::Invalid;
            }
        }
        next.dir = DirLine::from_line_state(&dir.state(0));
        next.ops[cpu] = CpuOp::Idle;
        next.pending &= !(1u8 << cpu);
        next
    }
}

impl Model for ProtocolModel {
    type State = ProtoState;
    type Action = ProtoAction;

    fn initial(&self) -> ProtoState {
        ProtoState {
            dir: DirLine::Uncached,
            caches: [Right::Invalid; MAX_CPUS],
            ops: [CpuOp::Idle; MAX_CPUS],
            pending: 0,
            link_ok: true,
        }
    }

    fn actions(&self, s: &ProtoState) -> Vec<ProtoAction> {
        let mut out = Vec::new();
        for cpu in 0..self.cpus {
            let c = cpu as u8;
            match s.ops[cpu] {
                CpuOp::Idle => {
                    out.push(ProtoAction::Issue {
                        cpu: c,
                        kind: OpKind::Read,
                    });
                    out.push(ProtoAction::Issue {
                        cpu: c,
                        kind: OpKind::Write,
                    });
                    if s.caches[cpu] != Right::Invalid {
                        out.push(ProtoAction::Evict { cpu: c });
                    }
                }
                CpuOp::InFlight { .. } => {
                    // A request only completes while the path is up; a
                    // downed link leaves timeout/retry as the sole moves.
                    if s.link_ok {
                        out.push(ProtoAction::Deliver { cpu: c });
                    }
                    out.push(ProtoAction::Timeout { cpu: c });
                }
                CpuOp::Poisoned { .. } => out.push(ProtoAction::AckPoison { cpu: c }),
            }
        }
        if self.faults {
            out.push(if s.link_ok {
                ProtoAction::LinkFail
            } else {
                ProtoAction::LinkRepair
            });
        }
        out
    }

    fn apply(&self, s: &ProtoState, a: &ProtoAction) -> ProtoState {
        match *a {
            ProtoAction::Issue { cpu, kind } => {
                let mut next = s.clone();
                next.ops[cpu as usize] = CpuOp::InFlight { kind, attempts: 1 };
                next.pending |= 1 << cpu;
                next
            }
            ProtoAction::Deliver { cpu } => {
                let CpuOp::InFlight { kind, .. } = s.ops[cpu as usize] else {
                    unreachable!("Deliver only enabled while in flight");
                };
                self.deliver(s, cpu as usize, kind)
            }
            ProtoAction::Timeout { cpu } => {
                let CpuOp::InFlight { kind, attempts } = s.ops[cpu as usize] else {
                    unreachable!("Timeout only enabled while in flight");
                };
                let mut next = s.clone();
                if attempts <= self.max_retries {
                    // Same threshold as the fault campaign's retry_or_poison:
                    // attempts > max_retries poisons, anything below retries.
                    next.ops[cpu as usize] = CpuOp::InFlight {
                        kind,
                        attempts: attempts + 1,
                    };
                } else {
                    next.ops[cpu as usize] = CpuOp::Poisoned { kind };
                    if self.mutation != Mutation::PoisonLeaksPendingEntry {
                        next.pending &= !(1u8 << cpu);
                    }
                }
                next
            }
            ProtoAction::AckPoison { cpu } => {
                let mut next = s.clone();
                match s.ops[cpu as usize] {
                    CpuOp::Poisoned { kind } if self.mutation == Mutation::RetryAfterPoison => {
                        // The seeded bug: the acknowledgement handler
                        // resurrects the abandoned operation, but the
                        // pending entry was already reaped at poison time.
                        next.ops[cpu as usize] = CpuOp::InFlight { kind, attempts: 1 };
                    }
                    _ => next.ops[cpu as usize] = CpuOp::Idle,
                }
                next
            }
            ProtoAction::Evict { cpu } => {
                let mut dir = Directory::new();
                dir.seed_line(0, s.dir.to_line_state());
                let _wb = dir.evict(HOME, cpu as usize, 0);
                let mut next = s.clone();
                next.caches[cpu as usize] = Right::Invalid;
                next.dir = DirLine::from_line_state(&dir.state(0));
                next
            }
            ProtoAction::LinkFail => {
                let mut next = s.clone();
                next.link_ok = false;
                next
            }
            ProtoAction::LinkRepair => {
                let mut next = s.clone();
                next.link_ok = true;
                if self.mutation == Mutation::RepairRacesInvalidation {
                    // The seeded bug: repair fast-completes the lowest
                    // stranded write without consulting the directory.
                    if let Some(w) = (0..self.cpus).find(|&i| {
                        matches!(
                            s.ops[i],
                            CpuOp::InFlight {
                                kind: OpKind::Write,
                                ..
                            }
                        )
                    }) {
                        next.caches[w] = Right::Exclusive;
                        next.ops[w] = CpuOp::Idle;
                        next.pending &= !(1u8 << w);
                    }
                }
                next
            }
        }
    }

    fn invariants(&self, s: &ProtoState) -> Result<(), String> {
        // Exactly one exclusive owner, machine-wide.
        let owners: Vec<usize> = (0..self.cpus)
            .filter(|&i| s.caches[i] == Right::Exclusive)
            .collect();
        if owners.len() > 1 {
            return Err(format!("two exclusive owners: cpus {owners:?}"));
        }
        // Directory/cache agreement — the single-writer/multiple-reader
        // contract as seen from both sides.
        match s.dir {
            DirLine::Uncached => {
                for i in 0..self.cpus {
                    if s.caches[i] != Right::Invalid {
                        return Err(format!(
                            "cpu {i} holds {:?} but the line is Uncached",
                            s.caches[i]
                        ));
                    }
                }
            }
            DirLine::Shared(mask) => {
                if mask == 0 {
                    return Err("directory Shared with an empty sharer set".to_string());
                }
                for i in 0..self.cpus {
                    let in_set = mask & (1 << i) != 0;
                    if s.caches[i] == Right::Exclusive {
                        return Err(format!(
                            "stale exclusive owner survives a read forward: cpu {i}"
                        ));
                    }
                    if in_set != (s.caches[i] == Right::Shared) {
                        return Err(format!(
                            "sharer set disagrees with cpu {i}: directory says {in_set}, \
                             cache holds {:?}",
                            s.caches[i]
                        ));
                    }
                }
            }
            DirLine::Exclusive(o) => {
                let o = o as usize;
                if s.caches[o] != Right::Exclusive {
                    return Err(format!(
                        "directory grants Exclusive to cpu {o} but it holds {:?}",
                        s.caches[o]
                    ));
                }
                for i in (0..self.cpus).filter(|&i| i != o) {
                    if s.caches[i] != Right::Invalid {
                        return Err(format!("stale sharer survives a write: cpu {i}"));
                    }
                }
            }
        }
        // Pending-table hygiene: an entry exists iff a transaction is in
        // flight; in particular, poison never leaves a pending entry.
        for i in 0..self.cpus {
            let bit = s.pending & (1 << i) != 0;
            match s.ops[i] {
                CpuOp::InFlight { attempts, .. } => {
                    if !bit {
                        return Err(format!("cpu {i} in flight without a pending entry"));
                    }
                    if attempts > self.max_retries + 1 {
                        return Err(format!(
                            "cpu {i} reached attempt {attempts}, past the poison \
                             threshold of {}",
                            self.max_retries + 1
                        ));
                    }
                }
                CpuOp::Poisoned { .. } if bit => {
                    return Err(format!("poison left cpu {i}'s pending entry behind"));
                }
                CpuOp::Idle if bit => {
                    return Err(format!("cpu {i} idle but still in the pending table"));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

impl ReducibleModel for ProtocolModel {
    /// Canonical orbit representative under CPU permutation.
    ///
    /// Every component of the state decomposes per CPU — believed rights,
    /// transaction status, the pending bit, and the CPU's bit/index in the
    /// directory view — and the full symmetric group on `0..cpus` acts
    /// coordinate-wise (the real `Directory` legs are interpreted by
    /// *role*, never by CPU identity, and `HOME` is a line-address
    /// attribute, not a privileged requester). The exact orbit canonical
    /// form is therefore simply the per-CPU tuples in sorted order: no
    /// permutation enumeration, `O(n log n)` per state.
    fn canonical(&self, s: &ProtoState) -> ProtoState {
        let (sharer_mask, owner) = match s.dir {
            DirLine::Uncached => (0u8, None),
            DirLine::Shared(mask) => (mask, None),
            DirLine::Exclusive(o) => (0u8, Some(o as usize)),
        };
        let mut keys: Vec<(Right, CpuOp, bool, bool, bool)> = (0..self.cpus)
            .map(|i| {
                (
                    s.caches[i],
                    s.ops[i],
                    s.pending & (1 << i) != 0,
                    sharer_mask & (1 << i) != 0,
                    owner == Some(i),
                )
            })
            .collect();
        keys.sort_unstable();
        let mut next = s.clone();
        let mut mask = 0u8;
        let mut new_owner = None;
        for (i, &(right, op, pend, shares, owns)) in keys.iter().enumerate() {
            next.caches[i] = right;
            next.ops[i] = op;
            if pend {
                next.pending |= 1 << i;
            } else {
                next.pending &= !(1u8 << i);
            }
            if shares {
                mask |= 1 << i;
            }
            if owns {
                new_owner = Some(i as u8);
            }
        }
        next.dir = match s.dir {
            DirLine::Uncached => DirLine::Uncached,
            DirLine::Shared(_) => DirLine::Shared(mask),
            DirLine::Exclusive(_) => {
                DirLine::Exclusive(new_owner.expect("owner survives the permutation"))
            }
        };
        next
    }

    /// Singleton ample set: acknowledge the lowest-numbered poisoned CPU.
    ///
    /// `AckPoison { cpu }` qualifies because (C1) it reads and writes only
    /// `ops[cpu]`, which no other CPU's action touches (deliver legs act
    /// on caches, repair on in-flight writes), so it commutes with and
    /// stays enabled under every other enabled action; (C2) it is
    /// invisible — `Poisoned` and `Idle` with the same pending bit agree
    /// on every invariant's truth; and (C3) it strictly decreases the
    /// number of poisoned CPUs, a measure every other action preserves or
    /// grows, so no cycle consists of ample transitions only (this
    /// survives the symmetry quotient because the measure is
    /// permutation-invariant). Under the `RetryAfterPoison` mutation the
    /// acknowledgement is neither invisible nor decreasing, so the model
    /// declines to offer an ample set and the checker expands everything.
    fn ample(&self, s: &ProtoState, _actions: &[ProtoAction]) -> Option<Vec<ProtoAction>> {
        if self.mutation == Mutation::RetryAfterPoison {
            return None;
        }
        (0..self.cpus)
            .find(|&i| matches!(s.ops[i], CpuOp::Poisoned { .. }))
            .map(|i| vec![ProtoAction::AckPoison { cpu: i as u8 }])
    }
}

/// Check that [`RetryPolicy::backoff`] is monotone non-decreasing and
/// saturates at `backoff_cap`, returning the first attempt pinned at the
/// cap. This is the liveness half the model checker abstracts away: retry
/// spacing stops growing, so a retrying CPU keeps making attempts at a
/// bounded cadence instead of backing off forever.
pub fn backoff_saturates(policy: &RetryPolicy) -> Result<u32, String> {
    let mut first_at_cap = None;
    let mut prev = None;
    for attempt in 1..=1024u32 {
        let b = policy.backoff(attempt);
        if b > policy.backoff_cap {
            return Err(format!("backoff({attempt}) = {b} exceeds the cap"));
        }
        if let Some(p) = prev {
            if b < p {
                return Err(format!("backoff({attempt}) = {b} shrank below {p}"));
            }
        }
        prev = Some(b);
        if b == policy.backoff_cap && first_at_cap.is_none() {
            first_at_cap = Some(attempt);
        }
        if let Some(at) = first_at_cap {
            if b != policy.backoff_cap {
                return Err(format!(
                    "backoff left the cap at attempt {attempt} after reaching it at {at}"
                ));
            }
        }
    }
    if policy.backoff(u32::MAX) != policy.backoff_cap {
        return Err("backoff(u32::MAX) is not the cap".to_string());
    }
    first_at_cap.ok_or_else(|| "backoff never reached the cap".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::{check, check_reduced, Reduction, Verdict};

    /// The shipped protocol is clean for every supported CPU count. The
    /// 3-CPU bound is the acceptance configuration; 16k states bounds it
    /// comfortably (the space is ~8k states).
    #[test]
    fn shipped_protocol_is_clean_for_2_and_3_cpus() {
        for (cpus, bound) in [(2, 4_000), (3, 40_000)] {
            let e = check(&ProtocolModel::new(cpus, 2), bound).expect_pass();
            assert!(
                e.states > 100,
                "{cpus} cpus explored only {} states",
                e.states
            );
            assert!(e.transitions > e.states);
        }
    }

    #[test]
    fn exploration_counts_are_deterministic() {
        let a = check(&ProtocolModel::new(3, 2), 40_000).expect_pass();
        let b = check(&ProtocolModel::new(3, 2), 40_000).expect_pass();
        assert_eq!(a, b);
    }

    #[test]
    fn skipped_invalidations_yield_a_stale_sharer_trace() {
        let m = ProtocolModel::mutated(2, 1, Mutation::SkipInvalidations);
        let cex = match check(&m, 100_000) {
            Verdict::Violated(cex) => cex,
            Verdict::Pass(_) => panic!("seeded bug must be caught"),
        };
        assert!(
            cex.invariant.contains("stale sharer survives a write"),
            "{}",
            cex.invariant
        );
        assert!(!cex.steps.is_empty(), "trace must show how we got there");
        // Minimal scenario: someone shares the line, someone else writes.
        // BFS minimality keeps the trace to those four steps.
        assert_eq!(cex.steps.len(), 4, "{}", cex.describe());
    }

    #[test]
    fn stale_owner_mutation_is_caught() {
        let m = ProtocolModel::mutated(2, 1, Mutation::StaleOwnerAfterForward);
        let cex = check(&m, 100_000).violation().expect("must be caught");
        assert!(
            cex.invariant.contains("stale exclusive owner")
                || cex.invariant.contains("two exclusive owners"),
            "{}",
            cex.invariant
        );
    }

    #[test]
    fn leaked_pending_entry_is_caught_with_a_timeout_trace() {
        let m = ProtocolModel::mutated(2, 1, Mutation::PoisonLeaksPendingEntry);
        let cex = check(&m, 100_000).violation().expect("must be caught");
        assert!(
            cex.invariant.contains("pending entry behind"),
            "{}",
            cex.invariant
        );
        // Issue, then timeouts through the poison threshold: 1 + (1+1) + 1.
        assert_eq!(cex.steps.len(), 1 + 2, "{}", cex.describe());
        let text = cex.describe();
        assert!(text.contains("Timeout"), "{text}");
    }

    #[test]
    fn recovery_protocol_is_clean_and_reductions_shrink_it() {
        for (cpus, bound) in [(2usize, 20_000usize), (3, 120_000)] {
            let m = ProtocolModel::recovery(cpus, 2);
            let plain = check(&m, bound).expect_pass();
            let sym = check_reduced(&m, bound, Reduction::SYMMETRY).expect_pass();
            let full = check_reduced(&m, bound, Reduction::FULL).expect_pass();
            assert!(
                sym.states < plain.states,
                "{cpus} cpus: symmetry {} !< plain {}",
                sym.states,
                plain.states
            );
            assert!(
                full.states <= sym.states,
                "{cpus} cpus: por {} > symmetry {}",
                full.states,
                sym.states
            );
            // Symmetry alone preserves BFS diameter (orbit paths lift).
            assert_eq!(plain.depth, sym.depth, "{cpus} cpus");
        }
    }

    #[test]
    fn healthy_state_counts_are_untouched_by_the_fault_extension() {
        // The link dimension only exists in recovery models: the healthy
        // 2-CPU count must stay at its committed golden.
        let e = check(&ProtocolModel::new(2, 2), 4_000).expect_pass();
        assert_eq!(e.states, 486);
    }

    #[test]
    fn retry_after_poison_is_caught_with_a_minimal_trace() {
        let m = ProtocolModel::recovery_mutated(2, 1, Mutation::RetryAfterPoison);
        let cex = check(&m, 200_000).violation().expect("must be caught");
        assert!(
            cex.invariant.contains("in flight without a pending entry"),
            "{}",
            cex.invariant
        );
        // Issue, two timeout strikes through the poison threshold, then
        // the buggy acknowledgement resurrects the operation.
        assert_eq!(cex.steps.len(), 4, "{}", cex.describe());
        assert!(cex.describe().contains("AckPoison"), "{}", cex.describe());
    }

    #[test]
    fn repair_racing_a_stranded_write_is_caught_with_a_minimal_trace() {
        let m = ProtocolModel::recovery_mutated(2, 1, Mutation::RepairRacesInvalidation);
        let cex = check(&m, 200_000).violation().expect("must be caught");
        // The fast-completed write leaves the directory unaware of the
        // new Exclusive copy.
        assert!(
            cex.invariant
                .contains("holds Exclusive but the line is Uncached")
                || cex.invariant.contains("stale"),
            "{}",
            cex.invariant
        );
        // Issue the write, cut the link, repair it: three steps.
        assert_eq!(cex.steps.len(), 3, "{}", cex.describe());
        assert!(cex.describe().contains("LinkRepair"), "{}", cex.describe());
    }

    #[test]
    fn every_mutation_is_still_caught_under_full_reduction() {
        for mutation in Mutation::SEEDED
            .into_iter()
            .chain(Mutation::RECOVERY_SEEDED)
        {
            let m = ProtocolModel::recovery_mutated(2, 1, mutation);
            let reduced = check_reduced(&m, 200_000, Reduction::FULL)
                .violation()
                .unwrap_or_else(|| panic!("{} must be caught under reduction", mutation.id()));
            let plain = check(&m, 200_000).violation().expect("caught unreduced");
            assert_eq!(
                plain.steps.len(),
                reduced.steps.len(),
                "{}: reduction lengthened the minimal trace",
                mutation.id()
            );
        }
    }

    /// The acceptance configuration: the fault-extended recovery protocol
    /// exhausted at 6 CPUs under symmetry+POR. Ignored in the debug suite
    /// (release-mode seconds, debug minutes); the release `report` binary
    /// regenerates and gates the same run in CI.
    #[test]
    #[ignore = "release-scale: exercised by the report binary in CI"]
    fn recovery_protocol_exhausts_at_6_cpus_with_full_reduction() {
        let e =
            check_reduced(&ProtocolModel::recovery(6, 1), 2_000_000, Reduction::FULL).expect_pass();
        assert!(e.states > 10_000, "unexpectedly small quotient: {e:?}");
    }

    #[test]
    fn backoff_of_the_default_policy_saturates() {
        let at = backoff_saturates(&RetryPolicy::gs1280_default()).expect("must saturate");
        // base 1 µs doubling to a 16 µs cap: attempt 5 is the first at cap.
        assert_eq!(at, 5);
    }
}
