//! The deterministic verification report behind `results/verify.json`.
//!
//! [`build`] runs every analysis at its pinned configuration and returns a
//! plain serializable summary; [`to_json`] renders it with stable field
//! order, so regenerating the artifact is byte-identical run to run. CI
//! regenerates it with `cargo run --release -p verify --bin report --
//! --check results/verify.json` and fails on any drift — state counts are
//! a regression seed: a protocol change that adds or removes reachable
//! states shows up as a diff here even when every invariant still holds.

use serde::{Deserialize, Serialize};
use std::path::Path;

use crate::cdg::{self, CdgReport, CdgVerdict, SweepSummary};
use crate::lint;
use crate::mc::{check, Exploration};
use crate::protocol::{backoff_saturates, Mutation, ProtocolModel};
use alphasim_coherence::RetryPolicy;

/// Model-checker result for one (cpus, max_retries) configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct McConfig {
    /// CPUs sharing the line.
    pub cpus: usize,
    /// Retries before poison.
    pub max_retries: u8,
    /// Exhaustive exploration counts.
    pub exploration: Exploration,
}

/// Proof that a seeded protocol bug is caught.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MutationCatch {
    /// Mutation id (see [`Mutation::id`]).
    pub mutation: String,
    /// The invariant the minimal counterexample violates.
    pub invariant: String,
    /// Length of the minimal trace.
    pub trace_len: usize,
}

/// Model-checker section of the report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct McSection {
    /// Clean configurations, exhaustively enumerated.
    pub configs: Vec<McConfig>,
    /// Every seeded mutation, each caught with a minimal trace.
    pub mutations_caught: Vec<MutationCatch>,
    /// First retry attempt whose backoff sits at the cap (liveness: the
    /// retry cadence is bounded).
    pub backoff_cap_attempt: u32,
}

/// CDG-analyzer section of the report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CdgSection {
    /// Full CDG of the healthy 8×8 torus (the GS1280 M64), acyclic.
    pub healthy_8x8: CdgReport,
    /// Cycle length found when the dateline VCs are removed — the analyzer
    /// demonstrably detects the deadlock the VCs exist to break.
    pub single_vc_8x8_cycle_len: usize,
    /// Every single-link-cut degradation of the 8×8 torus, up*/down*
    /// routed, each verified acyclic.
    pub single_cuts_8x8: SweepSummary,
    /// Every double-link-cut degradation of the 4×4 torus.
    pub double_cuts_4x4: SweepSummary,
}

/// Determinism-lint section of the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintSection {
    /// Source files scanned.
    pub files: usize,
    /// Findings silenced by audited `lint-allow` comments.
    pub allowed: usize,
    /// Unexplained findings (must be 0; the lint binary enforces it).
    pub findings: usize,
}

/// The whole `results/verify.json` artifact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// Explicit-state model checker.
    pub model_checker: McSection,
    /// Channel-dependency-graph analyzer.
    pub cdg: CdgSection,
    /// Determinism lint.
    pub lint: LintSection,
}

/// The pinned clean configurations: exhaustive for 2–4 CPUs, with the
/// retry bound tightened as the CPU count grows to keep the product space
/// at regenerate-in-seconds scale.
pub const MC_CONFIGS: [(usize, u8, usize); 3] = [(2, 2, 10_000), (3, 2, 60_000), (4, 1, 120_000)];

/// Run every analysis at its pinned configuration.
///
/// # Panics
///
/// Panics if any analysis fails — a failing verification must never write
/// an artifact.
pub fn build(workspace_root: &Path) -> Report {
    let configs = MC_CONFIGS
        .map(|(cpus, max_retries, bound)| McConfig {
            cpus,
            max_retries,
            exploration: check(&ProtocolModel::new(cpus, max_retries), bound).expect_pass(),
        })
        .to_vec();
    let mutations_caught = Mutation::SEEDED
        .map(|m| {
            let cex = check(&ProtocolModel::mutated(2, 1, m), 100_000)
                .violation()
                .unwrap_or_else(|| panic!("seeded mutation {} must be caught", m.id()));
            MutationCatch {
                mutation: m.id().to_string(),
                invariant: cex.invariant,
                trace_len: cex.steps.len(),
            }
        })
        .to_vec();
    let backoff_cap_attempt =
        backoff_saturates(&RetryPolicy::gs1280_default()).expect("backoff must saturate");

    let healthy_8x8 = cdg::healthy_torus(8, 8, true).verdict().expect_acyclic();
    let single_vc_8x8_cycle_len = match cdg::healthy_torus(8, 8, false).verdict() {
        CdgVerdict::Cycle(c) => c.len(),
        CdgVerdict::Acyclic(_) => panic!("single-VC torus must have a cycle"),
    };
    let single_cuts_8x8 = cdg::sweep_single_cuts(8, 8).expect("single cuts acyclic");
    let double_cuts_4x4 = cdg::sweep_double_cuts(4, 4).expect("double cuts acyclic");

    let scan = lint::scan_workspace(workspace_root).expect("workspace scans");

    Report {
        model_checker: McSection {
            configs,
            mutations_caught,
            backoff_cap_attempt,
        },
        cdg: CdgSection {
            healthy_8x8,
            single_vc_8x8_cycle_len,
            single_cuts_8x8,
            double_cuts_4x4,
        },
        lint: LintSection {
            files: scan.files,
            allowed: scan.allowed,
            findings: scan.findings.len(),
        },
    }
}

/// Render with stable field order and a trailing newline (the committed
/// byte format).
///
/// # Panics
///
/// Panics if serialization fails (it cannot: the types are plain data).
pub fn to_json(report: &Report) -> String {
    let mut s = serde_json::to_string_pretty(report).expect("plain data serializes");
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace_root;

    /// Fast half of the regeneration gate: the committed artifact's
    /// model-checker and lint sections match a fresh in-process run for the
    /// small configurations. The full byte-identity check (including the
    /// 8×8 sweeps) runs in CI via `--bin report -- --check`.
    #[test]
    fn committed_artifact_matches_recomputation() {
        // The vendored serde subset serializes but does not parse, so the
        // fast gate checks the committed text for the freshly recomputed
        // values rather than deserializing it.
        let path = workspace_root().join("results/verify.json");
        let committed = std::fs::read_to_string(&path).expect("results/verify.json is committed");
        for (cpus, max_retries, bound) in MC_CONFIGS.iter().take(2) {
            let fresh = check(&ProtocolModel::new(*cpus, *max_retries), *bound).expect_pass();
            for (key, val) in [
                ("states", fresh.states),
                ("transitions", fresh.transitions),
                ("depth", fresh.depth),
            ] {
                assert!(
                    committed.contains(&format!("\"{key}\": {val}")),
                    "{cpus}-CPU {key} = {val} drifted from the committed artifact"
                );
            }
        }
        let scan = lint::scan_workspace(&workspace_root()).expect("workspace scans");
        assert!(committed.contains("\"findings\": 0"));
        assert!(committed.contains(&format!("\"files\": {}", scan.files)));
        assert!(committed.contains(&format!("\"allowed\": {}", scan.allowed)));
        for m in Mutation::SEEDED {
            assert!(committed.contains(m.id()), "mutation {} missing", m.id());
        }
    }

    /// Full regeneration is byte-identical. Slow in debug builds, so CI
    /// exercises it through the release-mode `report --check` run instead.
    #[test]
    #[ignore = "slow in debug; CI runs the release --check equivalent"]
    fn full_report_is_byte_identical() {
        let path = workspace_root().join("results/verify.json");
        let committed = std::fs::read_to_string(&path).expect("artifact is committed");
        assert_eq!(to_json(&build(&workspace_root())), committed);
    }
}
