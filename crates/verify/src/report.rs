//! The deterministic verification report behind `results/verify.json`.
//!
//! [`build`] runs every analysis at its pinned configuration and returns a
//! plain serializable summary; [`to_json`] renders it with stable field
//! order, so regenerating the artifact is byte-identical run to run. CI
//! regenerates it with `cargo run --release -p verify --bin report --
//! --check results/verify.json` and fails on any drift — state counts are
//! a regression seed: a protocol change that adds or removes reachable
//! states shows up as a diff here even when every invariant still holds.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

use crate::cdg::{self, CdgReport, CdgVerdict, SweepSummary};
use crate::lint;
use crate::mc::{check, check_reduced, Exploration, Reduction};
use crate::ownership;
use crate::protocol::{backoff_saturates, Mutation, ProtocolModel};
use alphasim_coherence::RetryPolicy;

/// Model-checker result for one (cpus, max_retries) configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct McConfig {
    /// CPUs sharing the line.
    pub cpus: usize,
    /// Retries before poison.
    pub max_retries: u8,
    /// Exhaustive exploration counts.
    pub exploration: Exploration,
}

/// Proof that a seeded protocol bug is caught.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MutationCatch {
    /// Mutation id (see [`Mutation::id`]).
    pub mutation: String,
    /// The invariant the minimal counterexample violates.
    pub invariant: String,
    /// Length of the minimal trace.
    pub trace_len: usize,
}

/// One row of the reduction table: the fault-extended recovery protocol
/// at one configuration, explored plain (when affordable), under symmetry
/// alone, and under symmetry + partial-order reduction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReductionRow {
    /// CPUs sharing the line.
    pub cpus: usize,
    /// Retries before poison.
    pub max_retries: u8,
    /// Unreduced exploration; omitted above 4 CPUs, where the plain space
    /// stops being regenerate-in-seconds material.
    pub plain: Option<Exploration>,
    /// CPU-permutation symmetry only (depth equals the plain depth).
    pub symmetry: Exploration,
    /// Symmetry + ample-set partial-order reduction.
    pub full: Exploration,
}

/// Model-checker section of the report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct McSection {
    /// Clean configurations, exhaustively enumerated.
    pub configs: Vec<McConfig>,
    /// Every seeded mutation, each caught with a minimal trace.
    pub mutations_caught: Vec<MutationCatch>,
    /// The recovery-path mutations, caught under full reduction on the
    /// fault-extended model.
    pub recovery_mutations_caught: Vec<MutationCatch>,
    /// The fault-extended recovery protocol exhausted at scale, showing
    /// what each reduction buys.
    pub recovery_reduction: Vec<ReductionRow>,
    /// First retry attempt whose backoff sits at the cap (liveness: the
    /// retry cadence is bounded).
    pub backoff_cap_attempt: u32,
}

/// A deterministically sampled degraded sweep, with the sampling
/// parameters pinned so the artifact regenerates byte-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampledSweep {
    /// Cut configurations drawn from the pool.
    pub sample: usize,
    /// The committed sampling seed ([`cdg::SAMPLE_SEED`]).
    pub seed: u64,
    /// Verification outcome over the sample.
    pub summary: SweepSummary,
}

/// CDG-analyzer section of the report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CdgSection {
    /// Full CDG of the healthy 8×8 torus (the GS1280 M64), acyclic.
    pub healthy_8x8: CdgReport,
    /// The healthy 16×16 torus (a 256-CPU P×Q configuration), acyclic.
    pub healthy_16x16: CdgReport,
    /// The healthy 32×32 torus (the 1024-CPU ceiling), acyclic.
    pub healthy_32x32: CdgReport,
    /// Cycle length found when the dateline VCs are removed — the analyzer
    /// demonstrably detects the deadlock the VCs exist to break.
    pub single_vc_8x8_cycle_len: usize,
    /// Every single-link-cut degradation of the 8×8 torus, up*/down*
    /// routed, each verified acyclic.
    pub single_cuts_8x8: SweepSummary,
    /// Every double-link-cut degradation of the 4×4 torus.
    pub double_cuts_4x4: SweepSummary,
    /// Seeded sample of single-link cuts on the 16×16 torus.
    pub sampled_single_cuts_16x16: SampledSweep,
    /// Seeded sample of single-link cuts on the 32×32 torus.
    pub sampled_single_cuts_32x32: SampledSweep,
    /// Seeded sample of double-link cuts on the 8×8 torus (the exhaustive
    /// pool is 8128 pairs; the sample keeps regeneration fast).
    pub sampled_double_cuts_8x8: SampledSweep,
}

/// Determinism-lint section of the report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintSection {
    /// Source files scanned.
    pub files: usize,
    /// Findings silenced by audited `lint-allow` comments.
    pub allowed: usize,
    /// The silenced findings broken down by rule, so a new escape comment
    /// anywhere in the workspace shows up as a diff here.
    pub allowed_by_rule: BTreeMap<String, usize>,
    /// Unexplained findings (must be 0; the lint binary enforces it).
    pub findings: usize,
}

/// Per-type row of the ownership access map.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OwnershipTypeRow {
    /// Worker or guide type name.
    pub name: String,
    /// Fields tracked.
    pub fields: usize,
    /// `self.field` reads in the type's own methods.
    pub reads: usize,
    /// `self.field` writes in the type's own methods.
    pub writes: usize,
    /// Worker-field accesses through the guide's `EpochControl` handle —
    /// the sanctioned barrier path.
    pub barrier: usize,
}

/// Ownership-lint section of the report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OwnershipSection {
    /// Governed files analyzed.
    pub files: usize,
    /// The access map, one row per worker/guide type.
    pub types: Vec<OwnershipTypeRow>,
    /// Partition violations (must be 0; the ownership binary enforces it).
    pub findings: usize,
}

/// The whole `results/verify.json` artifact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// Explicit-state model checker.
    pub model_checker: McSection,
    /// Channel-dependency-graph analyzer.
    pub cdg: CdgSection,
    /// Epoch-engine ownership lint.
    pub ownership: OwnershipSection,
    /// Determinism lint.
    pub lint: LintSection,
}

/// The pinned clean configurations: exhaustive for 2–4 CPUs, with the
/// retry bound tightened as the CPU count grows to keep the product space
/// at regenerate-in-seconds scale.
pub const MC_CONFIGS: [(usize, u8, usize); 3] = [(2, 2, 10_000), (3, 2, 60_000), (4, 1, 120_000)];

/// The reduction-table configurations for the fault-extended recovery
/// protocol. Plain exploration is recorded up to [`PLAIN_CEILING`] CPUs;
/// beyond it only the reduced searches run (that is the point of the
/// reductions).
pub const REDUCTION_CONFIGS: [(usize, u8); 7] =
    [(2, 2), (3, 2), (4, 1), (5, 1), (6, 1), (7, 1), (8, 1)];

/// Largest CPU count whose *unreduced* recovery space is still recorded.
pub const PLAIN_CEILING: usize = 4;

/// Sample sizes for the seeded degraded sweeps at scale.
pub const SAMPLED_SINGLE_16X16: usize = 32;
/// 32×32 single-cut sample (each configuration costs seconds).
pub const SAMPLED_SINGLE_32X32: usize = 16;
/// 8×8 double-cut sample (pool: 8128 unordered pairs).
pub const SAMPLED_DOUBLE_8X8: usize = 64;

/// Run every analysis at its pinned configuration.
///
/// # Panics
///
/// Panics if any analysis fails — a failing verification must never write
/// an artifact.
pub fn build(workspace_root: &Path) -> Report {
    let configs = MC_CONFIGS
        .map(|(cpus, max_retries, bound)| McConfig {
            cpus,
            max_retries,
            exploration: check(&ProtocolModel::new(cpus, max_retries), bound).expect_pass(),
        })
        .to_vec();
    let mutations_caught = Mutation::SEEDED
        .map(|m| {
            let cex = check(&ProtocolModel::mutated(2, 1, m), 100_000)
                .violation()
                .unwrap_or_else(|| panic!("seeded mutation {} must be caught", m.id()));
            MutationCatch {
                mutation: m.id().to_string(),
                invariant: cex.invariant,
                trace_len: cex.steps.len(),
            }
        })
        .to_vec();
    // The recovery-path mutations are checked under full reduction on the
    // fault-extended model — the configuration the large-scale runs use.
    let recovery_mutations_caught = Mutation::RECOVERY_SEEDED
        .map(|m| {
            let cex = check_reduced(
                &ProtocolModel::recovery_mutated(2, 1, m),
                100_000,
                Reduction::FULL,
            )
            .violation()
            .unwrap_or_else(|| panic!("recovery mutation {} must be caught", m.id()));
            MutationCatch {
                mutation: m.id().to_string(),
                invariant: cex.invariant,
                trace_len: cex.steps.len(),
            }
        })
        .to_vec();
    let recovery_reduction = REDUCTION_CONFIGS
        .map(|(cpus, max_retries)| {
            let model = ProtocolModel::recovery(cpus, max_retries);
            let plain = (cpus <= PLAIN_CEILING).then(|| check(&model, 200_000).expect_pass());
            ReductionRow {
                cpus,
                max_retries,
                plain,
                symmetry: check_reduced(&model, 600_000, Reduction::SYMMETRY).expect_pass(),
                full: check_reduced(&model, 600_000, Reduction::FULL).expect_pass(),
            }
        })
        .to_vec();
    let backoff_cap_attempt =
        backoff_saturates(&RetryPolicy::gs1280_default()).expect("backoff must saturate");

    let healthy_8x8 = cdg::healthy_torus(8, 8, true).verdict().expect_acyclic();
    let healthy_16x16 = cdg::healthy_torus(16, 16, true).verdict().expect_acyclic();
    let healthy_32x32 = cdg::healthy_torus(32, 32, true).verdict().expect_acyclic();
    let single_vc_8x8_cycle_len = match cdg::healthy_torus(8, 8, false).verdict() {
        CdgVerdict::Cycle(c) => c.len(),
        CdgVerdict::Acyclic(_) => panic!("single-VC torus must have a cycle"),
    };
    let single_cuts_8x8 = cdg::sweep_single_cuts(8, 8).expect("single cuts acyclic");
    let double_cuts_4x4 = cdg::sweep_double_cuts(4, 4).expect("double cuts acyclic");
    let sampled = |sample: usize, summary: Result<SweepSummary, String>| SampledSweep {
        sample,
        seed: cdg::SAMPLE_SEED,
        summary: summary.expect("sampled cuts acyclic"),
    };
    let sampled_single_cuts_16x16 = sampled(
        SAMPLED_SINGLE_16X16,
        cdg::sweep_sampled_single_cuts(16, 16, SAMPLED_SINGLE_16X16, cdg::SAMPLE_SEED),
    );
    let sampled_single_cuts_32x32 = sampled(
        SAMPLED_SINGLE_32X32,
        cdg::sweep_sampled_single_cuts(32, 32, SAMPLED_SINGLE_32X32, cdg::SAMPLE_SEED),
    );
    let sampled_double_cuts_8x8 = sampled(
        SAMPLED_DOUBLE_8X8,
        cdg::sweep_sampled_double_cuts(8, 8, SAMPLED_DOUBLE_8X8, cdg::SAMPLE_SEED),
    );

    let own = ownership::scan_workspace(workspace_root).expect("governed files scan");
    let ownership_section = OwnershipSection {
        files: own.files,
        types: own
            .access
            .iter()
            .map(|(name, fields)| OwnershipTypeRow {
                name: name.clone(),
                fields: fields.len(),
                reads: fields.values().map(|a| a.reads).sum(),
                writes: fields.values().map(|a| a.writes).sum(),
                barrier: fields.values().map(|a| a.barrier).sum(),
            })
            .collect(),
        findings: own.findings.len(),
    };

    let scan = lint::scan_workspace(workspace_root).expect("workspace scans");

    Report {
        model_checker: McSection {
            configs,
            mutations_caught,
            recovery_mutations_caught,
            recovery_reduction,
            backoff_cap_attempt,
        },
        cdg: CdgSection {
            healthy_8x8,
            healthy_16x16,
            healthy_32x32,
            single_vc_8x8_cycle_len,
            single_cuts_8x8,
            double_cuts_4x4,
            sampled_single_cuts_16x16,
            sampled_single_cuts_32x32,
            sampled_double_cuts_8x8,
        },
        ownership: ownership_section,
        lint: LintSection {
            files: scan.files,
            allowed: scan.allowed,
            allowed_by_rule: scan.allowed_by_rule,
            findings: scan.findings.len(),
        },
    }
}

/// Render with stable field order and a trailing newline (the committed
/// byte format).
///
/// # Panics
///
/// Panics if serialization fails (it cannot: the types are plain data).
pub fn to_json(report: &Report) -> String {
    let mut s = serde_json::to_string_pretty(report).expect("plain data serializes");
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace_root;

    /// Fast half of the regeneration gate: the committed artifact's
    /// model-checker and lint sections match a fresh in-process run for the
    /// small configurations. The full byte-identity check (including the
    /// 8×8 sweeps) runs in CI via `--bin report -- --check`.
    #[test]
    fn committed_artifact_matches_recomputation() {
        // The vendored serde subset serializes but does not parse, so the
        // fast gate checks the committed text for the freshly recomputed
        // values rather than deserializing it.
        let path = workspace_root().join("results/verify.json");
        let committed = std::fs::read_to_string(&path).expect("results/verify.json is committed");
        for (cpus, max_retries, bound) in MC_CONFIGS.iter().take(2) {
            let fresh = check(&ProtocolModel::new(*cpus, *max_retries), *bound).expect_pass();
            for (key, val) in [
                ("states", fresh.states),
                ("transitions", fresh.transitions),
                ("depth", fresh.depth),
            ] {
                assert!(
                    committed.contains(&format!("\"{key}\": {val}")),
                    "{cpus}-CPU {key} = {val} drifted from the committed artifact"
                );
            }
        }
        let scan = lint::scan_workspace(&workspace_root()).expect("workspace scans");
        assert!(committed.contains("\"findings\": 0"));
        assert!(committed.contains(&format!("\"files\": {}", scan.files)));
        assert!(committed.contains(&format!("\"allowed\": {}", scan.allowed)));
        for m in Mutation::SEEDED.iter().chain(&Mutation::RECOVERY_SEEDED) {
            assert!(committed.contains(m.id()), "mutation {} missing", m.id());
        }
        let own = ownership::scan_workspace(&workspace_root()).expect("governed files scan");
        assert_eq!(own.findings.len(), 0);
        assert!(committed.contains("CampaignWorker"));
        assert!(committed.contains("CampaignGuide"));
        assert!(
            committed.contains(&format!("\"seed\": {}", crate::cdg::SAMPLE_SEED)),
            "sampling seed drifted from the committed artifact"
        );
    }

    /// Full regeneration is byte-identical. Slow in debug builds, so CI
    /// exercises it through the release-mode `report --check` run instead.
    #[test]
    #[ignore = "slow in debug; CI runs the release --check equivalent"]
    fn full_report_is_byte_identical() {
        let path = workspace_root().join("results/verify.json");
        let committed = std::fs::read_to_string(&path).expect("artifact is committed");
        assert_eq!(to_json(&build(&workspace_root())), committed);
    }
}
