//! Static ownership lint for the epoch-parallel engine.
//!
//! The PR 8 epoch engine's determinism argument rests on a *state
//! partition*: every [`CampaignWorker`] owns its region's slice of the
//! machine outright, cross-region effects flow only through
//! [`Outbox::emit`] under the lookahead contract, and the
//! [`CampaignGuide`] touches worker state only through an
//! [`EpochControl`] handle at epoch barriers. The runtime proptests
//! demonstrate the partition holds on the schedules they draw; this pass
//! proves the *code* cannot express the violations at all, by scanning
//! `crates/system/src/epoch.rs`, `crates/sim/src/shard.rs`, and
//! `crates/sim/src/par.rs` and checking every worker/guide method against
//! the partition discipline:
//!
//! * **Workers never reach for the epoch control.** A method in worker
//!   context (an `impl ShardWorker for …` block or an inherent impl of a
//!   worker type) must not mention `EpochControl`, `ctl.`, or the
//!   `worker`/`worker_mut` accessors — a worker's only cross-region
//!   channel is the outbox it is handed.
//! * **Guide state never leaks into a worker.** Fields that exist only on
//!   the guide (the fault plan, the watchdog, the master tables, …) must
//!   not be named `self.<field>` inside worker-context methods.
//! * **No shared accumulators.** Worker structs must not carry
//!   `Mutex`/`RwLock`/`RefCell`/`Cell`/atomic fields: an accumulator the
//!   barrier merge cannot see would make results depend on the shard
//!   schedule.
//! * **Guides mutate workers only under control.** A guide-context method
//!   that calls `worker_mut` must take an `EpochControl` parameter — the
//!   handle only exists between epochs, so the signature *is* the proof
//!   the write happens at a barrier.
//! * **Guides never drive event delivery**, and **nobody forges an
//!   outbox** outside the executor.
//!
//! Two structural proofs back the rules: `Outbox` exposes no public
//! fields (so [`Outbox::emit`], which enforces the lookahead contract, is
//! the only door), and `ShardWorker::handle` takes `&mut Outbox` (so a
//! worker cannot even type a cross-region effect that bypasses it).
//!
//! The pass also builds the per-field access map the rules consult —
//! which fields each context reads and writes, and which worker fields
//! the guide touches at barriers — and reports its shape so
//! `results/verify.json` pins the partition's surface area.
//!
//! The analysis is deliberately *textual* (token-boundary matching on
//! comment- and string-stripped source): it must run inside the ordinary
//! test suite with no compiler plumbing, and the properties it checks are
//! lexical — which identifiers appear in which scopes.
//!
//! [`CampaignWorker`]: ../../alphasim_system/index.html
//! [`CampaignGuide`]: ../../alphasim_system/index.html
//! [`Outbox::emit`]: alphasim_kernel::shard::Outbox::emit
//! [`Outbox`]: alphasim_kernel::shard::Outbox
//! [`EpochControl`]: alphasim_kernel::shard::EpochControl

use std::collections::BTreeMap;
use std::path::Path;

/// The files the partition discipline governs, relative to the workspace
/// root: the epoch engine, the shard/epoch infrastructure, and the worker
/// pool.
pub const GOVERNED_FILES: [&str; 3] = [
    "crates/system/src/epoch.rs",
    "crates/sim/src/shard.rs",
    "crates/sim/src/par.rs",
];

/// One ownership violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnershipFinding {
    /// Governed file (workspace-relative path as given to [`analyze`]).
    pub file: String,
    /// 1-based line of the offending text.
    pub line: usize,
    /// Stable rule identifier.
    pub rule: &'static str,
    /// Human explanation.
    pub message: String,
}

/// Read/write counts for one struct field, split by the context that
/// performed the access.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FieldAccess {
    /// `self.field` reads in the owning type's methods.
    pub reads: usize,
    /// `self.field` writes in the owning type's methods.
    pub writes: usize,
    /// Guide accesses through `ctl.worker(…)`/`ctl.worker_mut(…)` — the
    /// sanctioned barrier-merge path (worker fields only).
    pub barrier: usize,
}

/// The result of an ownership scan.
#[derive(Debug, Clone)]
pub struct OwnershipScan {
    /// Files analyzed.
    pub files: usize,
    /// Per-type, per-field access map: `type -> field -> counts`.
    pub access: BTreeMap<String, BTreeMap<String, FieldAccess>>,
    /// Violations (empty on the shipped engine).
    pub findings: Vec<OwnershipFinding>,
}

impl OwnershipScan {
    /// Total fields tracked for `type_name` (0 when unknown).
    pub fn field_count(&self, type_name: &str) -> usize {
        self.access.get(type_name).map_or(0, BTreeMap::len)
    }

    /// Worker fields the guide touches through the control handle.
    pub fn barrier_touched_fields(&self, type_name: &str) -> usize {
        self.access.get(type_name).map_or(0, |fields| {
            fields.values().filter(|a| a.barrier > 0).count()
        })
    }
}

/// Replace comments and string/char literals with spaces, preserving the
/// line structure, so brace counting and token matching never trip over
/// `format!("{…}")` braces or quoted keywords.
fn neutralize(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.extend([b' ', b' ']);
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.extend([b' ', b' ']);
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => {
                            out.extend([b' ', b' ']);
                            i += 2;
                        }
                        b'"' => {
                            out.push(b' ');
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            out.push(b'\n');
                            i += 1;
                        }
                        _ => {
                            out.push(b' ');
                            i += 1;
                        }
                    }
                }
            }
            // A char literal ('x' or '\n'); lifetimes ('a, 'static) have
            // no closing quote within two characters and pass through.
            b'\'' => {
                let close = if bytes.get(i + 1) == Some(&b'\\') {
                    i + 3
                } else {
                    i + 2
                };
                if bytes.get(close) == Some(&b'\'') {
                    out.extend(std::iter::repeat_n(b' ', close + 1 - i));
                    i = close + 1;
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).expect("spaces preserve UTF-8")
}

/// One parsed top-level item of a governed file.
#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        /// `(field, type-text, 1-based line)`.
        fields: Vec<(String, String, usize)>,
    },
    Impl {
        /// Base name of the implemented trait, if a trait impl.
        trait_name: Option<String>,
        /// Base name of the self type.
        target: String,
        /// `(name, signature, body, 1-based body start line)`.
        methods: Vec<(String, String, String, usize)>,
    },
    /// A trait definition with its raw body (for the structural proofs).
    Trait { name: String, body: String },
}

/// The base identifier of a type expression: `CampaignWorker<T>` →
/// `CampaignWorker`.
fn base_name(ty: &str) -> String {
    ty.trim()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect()
}

/// Split an impl header (already stripped of the leading `impl<…>`) into
/// `(trait, target)` at the ` for ` that sits outside angle brackets.
fn split_impl_header(rest: &str) -> (Option<String>, String) {
    let bytes = rest.as_bytes();
    let mut depth = 0i32;
    for i in 0..bytes.len().saturating_sub(4) {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' => depth -= 1,
            b' ' if depth == 0 && rest[i..].starts_with(" for ") => {
                return (Some(base_name(&rest[..i])), base_name(&rest[i + 5..]));
            }
            _ => {}
        }
    }
    (None, base_name(rest))
}

/// Skip a balanced `<…>` generic list starting at `at` (which must point
/// at `<`), returning the index one past the closing `>`.
fn skip_generics(s: &str, at: usize) -> usize {
    let bytes = s.as_bytes();
    let mut depth = 0i32;
    for (i, &b) in bytes.iter().enumerate().skip(at) {
        match b {
            b'<' => depth += 1,
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
    }
    s.len()
}

/// Parse the struct fields of a (neutralized) struct body: `name: Type,`
/// entries at angle-depth 0.
fn parse_fields(body: &str, body_start_line: usize) -> Vec<(String, String, usize)> {
    let mut fields = Vec::new();
    let mut angle = 0i32;
    let mut entry = String::new();
    let mut entry_line = None;
    let mut line = body_start_line;
    for c in body.chars() {
        match c {
            '\n' => {
                line += 1;
                entry.push(' ');
            }
            '<' => {
                angle += 1;
                entry.push(c);
            }
            '>' => {
                angle -= 1;
                entry.push(c);
            }
            ',' if angle == 0 => {
                if let Some((name, ty)) = split_field(&entry) {
                    fields.push((name, ty, entry_line.unwrap_or(line)));
                }
                entry.clear();
                entry_line = None;
            }
            _ => {
                if !c.is_whitespace() && entry_line.is_none() {
                    entry_line = Some(line);
                }
                entry.push(c);
            }
        }
    }
    if let Some((name, ty)) = split_field(&entry) {
        fields.push((name, ty, entry_line.unwrap_or(line)));
    }
    fields
}

fn split_field(entry: &str) -> Option<(String, String)> {
    let entry = entry.trim();
    let entry = entry
        .strip_prefix("pub(crate)")
        .or_else(|| entry.strip_prefix("pub"))
        .unwrap_or(entry)
        .trim();
    let (name, ty) = entry.split_once(':')?;
    let name = name.trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return None;
    }
    Some((name.to_string(), ty.trim().to_string()))
}

/// Parse the methods of a (neutralized) impl body: `fn name(…) { … }`
/// items at relative depth 0.
fn parse_methods(body: &str, body_start_line: usize) -> Vec<(String, String, usize, String)> {
    // Returns (name, signature, body-start-line, body).
    let mut methods = Vec::new();
    let bytes = body.as_bytes();
    let mut line = body_start_line;
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        // A method starts at `fn ` on a word boundary at depth 0.
        if body[i..].starts_with("fn ")
            && (i == 0 || !bytes[i - 1].is_ascii_alphanumeric() && bytes[i - 1] != b'_')
        {
            let name: String = body[i + 3..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            // Signature runs to the opening brace (or a `;` for a
            // body-less trait method).
            let mut j = i;
            let mut sig_end = None;
            let mut sig_line = line;
            while j < bytes.len() {
                match bytes[j] {
                    b'{' => {
                        sig_end = Some(j);
                        break;
                    }
                    b';' => break,
                    b'\n' => sig_line += 1,
                    _ => {}
                }
                j += 1;
            }
            let Some(open) = sig_end else {
                i = j + 1;
                line = sig_line;
                continue;
            };
            let sig = body[i..open].to_string();
            // Body runs to the matching close brace.
            let mut depth = 0i32;
            let mut k = open;
            let mut end = open;
            while k < bytes.len() {
                match bytes[k] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            end = k;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            methods.push((name, sig, sig_line, body[open..=end].to_string()));
            // Re-count lines across the body we just consumed.
            line = sig_line + body[open..=end].matches('\n').count();
            i = end + 1;
            continue;
        }
        i += 1;
    }
    methods
}

/// Parse a neutralized file into top-level items.
fn parse_items(clean: &str) -> Vec<Item> {
    let mut items = Vec::new();
    let bytes = clean.as_bytes();
    let mut i = 0;
    let mut line = 1usize;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        let rest = &clean[i..];
        let at_word_start = i == 0 || !bytes[i - 1].is_ascii_alphanumeric() && bytes[i - 1] != b'_';
        let keyword = ["struct ", "impl ", "impl<", "trait "]
            .into_iter()
            .find(|k| at_word_start && rest.starts_with(k));
        let Some(keyword) = keyword else {
            i += 1;
            continue;
        };
        // Header runs to the opening brace or a terminating `;` (tuple
        // structs, which carry no named fields and are skipped).
        let mut j = i;
        let mut open = None;
        let mut hdr_line = line;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    open = Some(j);
                    break;
                }
                b';' => break,
                b'\n' => hdr_line += 1,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            line = hdr_line;
            continue;
        };
        // Body runs to the matching close brace.
        let mut depth = 0i32;
        let mut k = open;
        let mut end = open;
        while k < bytes.len() {
            match bytes[k] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = k;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let header = &clean[i..open];
        let body = &clean[open + 1..end];
        let body_start_line = line + header.matches('\n').count();
        match keyword {
            "struct " => {
                let name = base_name(&header["struct ".len()..]);
                items.push(Item::Struct {
                    name,
                    fields: parse_fields(body, body_start_line),
                });
            }
            "trait " => {
                let name = base_name(&header["trait ".len()..]);
                items.push(Item::Trait {
                    name,
                    body: body.to_string(),
                });
            }
            _ => {
                // `impl` or `impl<…>`: skip the generic parameter list,
                // then split trait from target.
                let after = header["impl".len()..].trim_start();
                let rest = if after.starts_with('<') {
                    let skip = skip_generics(after, 0);
                    &after[skip..]
                } else {
                    after
                };
                let (trait_name, target) = split_impl_header(rest.trim());
                let methods = parse_methods(body, body_start_line)
                    .into_iter()
                    .map(|(n, s, l, b)| (n, s, b, l))
                    .collect();
                items.push(Item::Impl {
                    trait_name,
                    target,
                    methods,
                });
            }
        }
        line = hdr_line + clean[open..=end].matches('\n').count();
        i = end + 1;
    }
    items
}

/// Whether `needle` occurs in `hay` at a token boundary on both sides.
fn token_match(hay: &str, needle: &str) -> Option<usize> {
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let bytes = hay.as_bytes();
    let needle_starts_word = needle.bytes().next().is_some_and(is_word);
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok = !needle_starts_word || at == 0 || !is_word(bytes[at - 1]);
        let end = at + needle.len();
        let needle_ends_word = needle.bytes().last().is_some_and(is_word);
        let after_ok = !needle_ends_word || end >= bytes.len() || !is_word(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

/// 1-based line of byte offset `at` within `text`, given the line `text`
/// starts on.
fn line_of(text: &str, at: usize, start_line: usize) -> usize {
    start_line + text[..at].matches('\n').count()
}

/// Whether a `self.field` occurrence at `at` is a write: followed by an
/// assignment operator or a known mutator call.
fn is_write(hay: &str, after: usize) -> bool {
    let rest = hay[after..].trim_start();
    for op in ["=", "+=", "-=", "*=", "/=", "&=", "|=", "^="] {
        if rest.starts_with(op) && !rest.starts_with("==") && !rest.starts_with("=>") {
            return true;
        }
    }
    [
        ".push(",
        ".insert(",
        ".remove(",
        ".clear(",
        ".extend(",
        ".push_back(",
        ".pop(",
        ".sort",
        ".truncate(",
    ]
    .into_iter()
    .any(|m| rest.starts_with(m))
}

/// Analyze `(path, source)` pairs. The paths are labels for findings; the
/// sources need not exist on disk, which is how the seeded-violation
/// tests feed doctored copies of the real engine through the lint.
pub fn analyze(sources: &[(String, String)]) -> OwnershipScan {
    let parsed: Vec<(String, Vec<Item>)> = sources
        .iter()
        .map(|(path, text)| (path.clone(), parse_items(&neutralize(text))))
        .collect();

    // Pass 1: discover worker and guide types and their fields.
    let mut worker_types: Vec<String> = Vec::new();
    let mut guide_types: Vec<String> = Vec::new();
    let mut struct_fields: BTreeMap<String, Vec<(String, String, usize)>> = BTreeMap::new();
    let mut struct_file: BTreeMap<String, String> = BTreeMap::new();
    for (path, items) in &parsed {
        for item in items {
            match item {
                Item::Struct { name, fields } => {
                    struct_fields.insert(name.clone(), fields.clone());
                    struct_file.insert(name.clone(), path.clone());
                }
                Item::Impl {
                    trait_name: Some(t),
                    target,
                    ..
                } if t == "ShardWorker" => worker_types.push(target.clone()),
                Item::Impl {
                    trait_name: Some(t),
                    target,
                    ..
                } if t == "EpochGuide" => guide_types.push(target.clone()),
                _ => {}
            }
        }
    }

    // Guide-only fields: on some guide type but on no worker type.
    let field_names = |types: &[String]| -> Vec<String> {
        let mut v: Vec<String> = types
            .iter()
            .filter_map(|t| struct_fields.get(t))
            .flatten()
            .map(|(n, _, _)| n.clone())
            .collect();
        v.sort();
        v.dedup();
        v
    };
    let worker_fields = field_names(&worker_types);
    let guide_only: Vec<String> = field_names(&guide_types)
        .into_iter()
        .filter(|f| !worker_fields.contains(f))
        .collect();

    let mut findings = Vec::new();
    let mut access: BTreeMap<String, BTreeMap<String, FieldAccess>> = BTreeMap::new();
    for t in worker_types.iter().chain(&guide_types) {
        let map = access.entry(t.clone()).or_default();
        for (f, _, _) in struct_fields.get(t).into_iter().flatten() {
            map.entry(f.clone()).or_default();
        }
    }

    // Rule: no shared-mutable accumulator fields on worker structs. The
    // needles are concatenated at runtime so the determinism lint does
    // not flag this file for naming the types it bans.
    let shared_markers: Vec<String> = ["Mutex", "RwLock", "RefCell", "Cell"]
        .iter()
        .map(|t| [t, "<"].concat())
        .chain(std::iter::once(["Atom", "ic"].concat()))
        .collect();
    for t in &worker_types {
        for (f, ty, fline) in struct_fields.get(t).into_iter().flatten() {
            if shared_markers.iter().any(|m| ty.contains(m.as_str())) {
                findings.push(OwnershipFinding {
                    file: struct_file.get(t).cloned().unwrap_or_default(),
                    line: *fline,
                    rule: "shared-accumulator-field",
                    message: format!(
                        "worker field `{t}.{f}: {ty}` is shared mutable state the \
                         barrier merge cannot see; accumulate in region-owned state \
                         and merge at the barrier"
                    ),
                });
            }
        }
    }

    // Pass 2: walk methods in worker/guide context.
    for (path, items) in &parsed {
        for item in items {
            let Item::Impl {
                trait_name,
                target,
                methods,
            } = item
            else {
                continue;
            };
            let worker_ctx =
                worker_types.contains(target) || trait_name.as_deref() == Some("ShardWorker");
            let guide_ctx =
                guide_types.contains(target) || trait_name.as_deref() == Some("EpochGuide");
            if !worker_ctx && !guide_ctx {
                continue;
            }
            for (mname, sig, body, bline) in methods {
                // Access map: `self.<field>` of the impl target.
                if let Some(fields) = struct_fields.get(target) {
                    for (f, _, _) in fields {
                        let needle = format!("self.{f}");
                        let mut from = 0;
                        while let Some(at) = token_match(&body[from..], &needle) {
                            let abs = from + at;
                            let entry = access
                                .entry(target.clone())
                                .or_default()
                                .entry(f.clone())
                                .or_default();
                            if is_write(body, abs + needle.len()) {
                                entry.writes += 1;
                            } else {
                                entry.reads += 1;
                            }
                            from = abs + needle.len();
                        }
                    }
                }
                if worker_ctx {
                    // Rule: workers never reach for the epoch control.
                    for needle in ["EpochControl", "ctl.", ".worker_mut(", ".worker("] {
                        if let Some(at) = token_match(body, needle) {
                            findings.push(OwnershipFinding {
                                file: path.clone(),
                                line: line_of(body, at, *bline),
                                rule: "worker-touches-control",
                                message: format!(
                                    "worker method `{target}::{mname}` mentions `{needle}`: \
                                     cross-region effects must flow through the outbox, and \
                                     only the guide holds the epoch control"
                                ),
                            });
                        }
                    }
                    // Rule: guide state never appears inside a worker.
                    for f in &guide_only {
                        let needle = format!("self.{f}");
                        if let Some(at) = token_match(body, &needle) {
                            findings.push(OwnershipFinding {
                                file: path.clone(),
                                line: line_of(body, at, *bline),
                                rule: "guide-state-in-worker",
                                message: format!(
                                    "worker method `{target}::{mname}` reads guide-owned \
                                     state `{f}`: barrier-plane state is invisible inside \
                                     an epoch"
                                ),
                            });
                        }
                    }
                }
                if guide_ctx {
                    // Rule: worker mutation only under an EpochControl
                    // parameter (the handle exists only at barriers).
                    if token_match(body, ".worker_mut(").is_some() && !sig.contains("EpochControl")
                    {
                        findings.push(OwnershipFinding {
                            file: path.clone(),
                            line: *bline,
                            rule: "ungated-worker-mutation",
                            message: format!(
                                "guide method `{target}::{mname}` mutates workers without \
                                 an EpochControl parameter: worker writes must be gated \
                                 by a barrier handle"
                            ),
                        });
                    }
                    // Rule: guides never drive event delivery directly.
                    if let Some(at) = token_match(body, ".handle(") {
                        findings.push(OwnershipFinding {
                            file: path.clone(),
                            line: line_of(body, at, *bline),
                            rule: "guide-drives-events",
                            message: format!(
                                "guide method `{target}::{mname}` calls `handle` directly: \
                                 event delivery belongs to the epoch executor"
                            ),
                        });
                    }
                    // Access map: barrier-path touches of worker fields.
                    for wt in &worker_types {
                        for (f, _, _) in struct_fields.get(wt).into_iter().flatten() {
                            for acc in ["worker_mut(", "worker("] {
                                let mut from = 0;
                                while let Some(at) = token_match(&body[from..], acc) {
                                    let abs = from + at + acc.len();
                                    // `worker*(idx).field`: find the close
                                    // paren, then match `.field`.
                                    if let Some(close) = body[abs..].find(')') {
                                        let after = &body[abs + close + 1..];
                                        if after.starts_with(&format!(".{f}"))
                                            && !after[1 + f.len()..].starts_with(|c: char| {
                                                c.is_alphanumeric() || c == '_'
                                            })
                                        {
                                            access
                                                .entry(wt.clone())
                                                .or_default()
                                                .entry(f.clone())
                                                .or_default()
                                                .barrier += 1;
                                        }
                                    }
                                    from = abs;
                                }
                            }
                        }
                    }
                }
            }
        }
        // Rule: nobody forges an outbox outside the infrastructure file.
        if !path.ends_with("shard.rs") {
            for (_, items_text) in sources.iter().filter(|(p, _)| p == path) {
                let clean = neutralize(items_text);
                for needle in ["Outbox {", "Outbox::new("] {
                    if let Some(at) = clean.find(needle) {
                        findings.push(OwnershipFinding {
                            file: path.clone(),
                            line: line_of(&clean, at, 1),
                            rule: "outbox-forged",
                            message: "outboxes are built only by the epoch executor; \
                                      emit through the one you were handed"
                                .to_string(),
                        });
                    }
                }
            }
        }
    }

    // Structural proofs on the infrastructure file.
    for (path, items) in &parsed {
        if !path.ends_with("shard.rs") {
            continue;
        }
        for item in items {
            match item {
                Item::Struct { name, fields } if name == "Outbox" => {
                    // The parser strips `pub` markers while splitting
                    // fields, so re-check the raw source line instead.
                    let raw = &sources
                        .iter()
                        .find(|(p, _)| p == path)
                        .expect("parsed from sources")
                        .1;
                    for (f, _, fline) in fields {
                        let line_text = raw.lines().nth(fline - 1).unwrap_or_default();
                        if line_text.trim_start().starts_with("pub") {
                            findings.push(OwnershipFinding {
                                file: path.clone(),
                                line: *fline,
                                rule: "outbox-field-exposed",
                                message: format!(
                                    "Outbox field `{f}` is public: emit() must be the \
                                     only way to produce a cross-region effect"
                                ),
                            });
                        }
                    }
                }
                Item::Trait { name, body } if name == "ShardWorker" => {
                    let has_outbox_param = body.split("fn handle").nth(1).is_some_and(|sig| {
                        sig.split('{').next().is_some_and(|s| s.contains("Outbox"))
                    });
                    if !has_outbox_param {
                        findings.push(OwnershipFinding {
                            file: path.clone(),
                            line: 1,
                            rule: "handle-without-outbox",
                            message: "ShardWorker::handle must take &mut Outbox so every \
                                      cross-region effect is typed through emit()"
                                .to_string(),
                        });
                    }
                }
                _ => {}
            }
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    OwnershipScan {
        files: sources.len(),
        access,
        findings,
    }
}

/// Run [`analyze`] on the governed files under `root`.
///
/// # Errors
///
/// Propagates the I/O error if a governed file cannot be read.
pub fn scan_workspace(root: &Path) -> std::io::Result<OwnershipScan> {
    let mut sources = Vec::new();
    for rel in GOVERNED_FILES {
        sources.push((rel.to_string(), std::fs::read_to_string(root.join(rel))?));
    }
    Ok(analyze(&sources))
}

/// Render findings for humans, one per line.
pub fn describe(findings: &[OwnershipFinding]) -> String {
    let mut s = String::new();
    for f in findings {
        s.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file, f.line, f.rule, f.message
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace_root;

    fn real_sources() -> Vec<(String, String)> {
        GOVERNED_FILES
            .iter()
            .map(|rel| {
                let text = std::fs::read_to_string(workspace_root().join(rel))
                    .expect("governed file exists");
                (rel.to_string(), text)
            })
            .collect()
    }

    #[test]
    fn the_shipped_engine_has_no_findings() {
        let scan = analyze(&real_sources());
        assert_eq!(scan.files, 3);
        assert!(
            scan.findings.is_empty(),
            "partition violations:\n{}",
            describe(&scan.findings)
        );
    }

    #[test]
    fn the_access_map_covers_the_worker_and_the_guide() {
        let scan = analyze(&real_sources());
        let worker = scan.access.get("CampaignWorker").expect("worker mapped");
        let guide = scan.access.get("CampaignGuide").expect("guide mapped");
        assert!(worker.len() >= 15, "worker fields: {}", worker.len());
        assert!(guide.len() >= 10, "guide fields: {}", guide.len());
        // The engine really does read and write its own state…
        assert!(worker.values().any(|a| a.writes > 0));
        assert!(worker.values().any(|a| a.reads > 0));
        // …and the guide really does reach workers through the barrier
        // path (republish, fault strikes, drain marks).
        assert!(
            scan.barrier_touched_fields("CampaignWorker") >= 3,
            "barrier-touched: {}",
            scan.barrier_touched_fields("CampaignWorker")
        );
        // Guide-plane state is never barrier-path state.
        assert!(guide.values().all(|a| a.barrier == 0));
    }

    fn seeded(mutate: impl Fn(&mut String)) -> OwnershipScan {
        let mut sources = real_sources();
        mutate(&mut sources[0].1); // epoch.rs
        analyze(&sources)
    }

    #[test]
    fn a_cross_region_write_is_flagged() {
        let scan = seeded(|epoch| {
            // A worker reaching into a peer region through the control.
            let anchor = "Ev::DropNotice { tag } => self.retry_or_poison(at, tag, out),";
            assert!(epoch.contains(anchor), "anchor drifted");
            *epoch = epoch.replace(
                anchor,
                "Ev::DropNotice { tag } => { ctl.worker_mut(0).issued[0] += 1; \
                 self.retry_or_poison(at, tag, out) },",
            );
        });
        assert!(
            scan.findings
                .iter()
                .any(|f| f.rule == "worker-touches-control"),
            "got:\n{}",
            describe(&scan.findings)
        );
    }

    #[test]
    fn a_guide_state_read_inside_a_worker_is_flagged() {
        let scan = seeded(|epoch| {
            let anchor = "Ev::Inject { cpu } => self.top_up(at, cpu, out),";
            assert!(epoch.contains(anchor), "anchor drifted");
            *epoch = epoch.replace(
                anchor,
                "Ev::Inject { cpu } => { let _skip = self.plan_idx > 0; \
                 self.top_up(at, cpu, out) },",
            );
        });
        let hit = scan
            .findings
            .iter()
            .find(|f| f.rule == "guide-state-in-worker")
            .unwrap_or_else(|| panic!("not flagged:\n{}", describe(&scan.findings)));
        assert!(hit.message.contains("plan_idx"), "{}", hit.message);
    }

    #[test]
    fn an_unmerged_shared_accumulator_is_flagged() {
        let scan = seeded(|epoch| {
            let anchor = "pub(crate) steps: Vec<NetStep<Option<ServedLeg>>>,";
            assert!(epoch.contains(anchor), "anchor drifted");
            *epoch = epoch.replace(
                anchor,
                "pub(crate) steps: Vec<NetStep<Option<ServedLeg>>>,\n    \
                 pub(crate) totals: Arc<Mutex<u64>>,",
            );
        });
        let hit = scan
            .findings
            .iter()
            .find(|f| f.rule == "shared-accumulator-field")
            .unwrap_or_else(|| panic!("not flagged:\n{}", describe(&scan.findings)));
        assert!(hit.message.contains("totals"), "{}", hit.message);
    }

    #[test]
    fn an_ungated_worker_mutation_is_flagged() {
        let scan = seeded(|epoch| {
            // A guide method that takes raw workers instead of the control.
            let anchor = "impl<T: Topology + Clone + Send + Sync + 'static> CampaignGuide<T> {";
            assert!(epoch.contains(anchor), "anchor drifted");
            *epoch = epoch.replace(
                anchor,
                "impl<T: Topology + Clone + Send + Sync + 'static> CampaignGuide<T> {\n    \
                 fn sneak(&mut self, raw: &mut RawSlots<T>) { \
                 raw.worker_mut(0).issued[0] += 1; }\n",
            );
        });
        assert!(
            scan.findings
                .iter()
                .any(|f| f.rule == "ungated-worker-mutation"),
            "got:\n{}",
            describe(&scan.findings)
        );
    }

    #[test]
    fn a_forged_outbox_is_flagged() {
        let scan = seeded(|epoch| {
            epoch.push_str("\nfn forge() { let _o = Outbox::new(0); }\n");
        });
        assert!(
            scan.findings.iter().any(|f| f.rule == "outbox-forged"),
            "got:\n{}",
            describe(&scan.findings)
        );
    }

    #[test]
    fn neutralize_blanks_strings_and_comments_but_keeps_structure() {
        let src = "fn a() { // brace in comment {\n  let s = \"fmt {x}\"; /* { */ }\n";
        let clean = neutralize(src);
        assert_eq!(clean.matches('\n').count(), src.matches('\n').count());
        assert!(!clean.contains("fmt"));
        assert!(!clean.contains("brace"));
        assert_eq!(
            clean.matches('{').count(),
            1,
            "only the real brace survives: {clean:?}"
        );
        // Lifetimes survive, char literals are blanked.
        let lt = neutralize("fn b<'a>(x: &'a str) { let c = 'y'; }");
        assert!(lt.contains("'a"));
        assert!(!lt.contains('y'));
    }

    #[test]
    fn impl_headers_split_trait_and_target_through_generics() {
        let items = parse_items(&neutralize(
            "impl<T: Topology + Clone> EpochGuide<CampaignWorker<T>>\n    \
             for CampaignGuide<T>\n{\n    fn next_barrier(&mut self) -> Option<SimTime> { None }\n}\n",
        ));
        let Item::Impl {
            trait_name,
            target,
            methods,
        } = &items[0]
        else {
            panic!("expected impl, got {items:?}");
        };
        assert_eq!(trait_name.as_deref(), Some("EpochGuide"));
        assert_eq!(target, "CampaignGuide");
        assert_eq!(methods.len(), 1);
        assert_eq!(methods[0].0, "next_barrier");
    }
}
