//! A small generic explicit-state model checker.
//!
//! [`check`] breadth-first enumerates every state reachable from a
//! [`Model`]'s initial state, deduplicating states in an ordered set (so
//! exploration order — and therefore every reported count — is
//! deterministic), checking the model's safety invariants on each state as
//! it is discovered, and requiring progress: a reachable state with no
//! enabled action is reported as a deadlock unless the model declares it
//! terminal.
//!
//! Because the search is breadth-first, the counterexample reconstructed
//! from the predecessor table on a violation is a *minimal-length* trace:
//! no shorter action sequence reaches any violating state.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Debug;
use std::fmt::Write as _;

/// A finite-state transition system with checkable invariants.
pub trait Model {
    /// A full system state. `Ord` supplies the deterministic dedup order.
    type State: Clone + Ord + Debug;
    /// One enabled transition out of a state.
    type Action: Clone + Debug;

    /// The single initial state.
    fn initial(&self) -> Self::State;

    /// Every action enabled in `state`, in a deterministic order.
    fn actions(&self, state: &Self::State) -> Vec<Self::Action>;

    /// The successor of `state` under `action`.
    fn apply(&self, state: &Self::State, action: &Self::Action) -> Self::State;

    /// Check every safety invariant of `state`; `Err` names the violated
    /// invariant.
    fn invariants(&self, state: &Self::State) -> Result<(), String>;

    /// Whether `state` is allowed to have no enabled actions. The default
    /// (`false`) makes the checker treat any quiescent state as a deadlock.
    fn is_terminal(&self, _state: &Self::State) -> bool {
        false
    }
}

/// Aggregate counts from an exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Exploration {
    /// Distinct reachable states.
    pub states: usize,
    /// Transitions traversed (including those leading to known states).
    pub transitions: usize,
    /// Longest shortest-path distance from the initial state.
    pub depth: usize,
}

/// A minimal-length trace from the initial state to a violating state.
#[derive(Debug, Clone)]
pub struct Counterexample<M: Model> {
    /// The violated invariant (or deadlock description).
    pub invariant: String,
    /// The initial state.
    pub initial: M::State,
    /// The actions taken and the states they produced, in order; the last
    /// state is the violating one.
    pub steps: Vec<(M::Action, M::State)>,
}

impl<M: Model> Counterexample<M> {
    /// Render the trace for humans: the violated invariant, then each
    /// action and resulting state on its own line.
    pub fn describe(&self) -> String {
        let mut s = format!("violated: {}\n  start: {:?}", self.invariant, self.initial);
        for (i, (action, state)) in self.steps.iter().enumerate() {
            let _ = write!(s, "\n  {:>2}. {:?} -> {:?}", i + 1, action, state);
        }
        s
    }
}

/// The outcome of [`check`].
#[derive(Debug, Clone)]
pub enum Verdict<M: Model> {
    /// Every reachable state satisfies every invariant and has a successor.
    Pass(Exploration),
    /// Some reachable state violates an invariant (or deadlocks); the
    /// counterexample is minimal-length.
    Violated(Counterexample<M>),
}

impl<M: Model> Verdict<M> {
    /// The exploration counts, or a panic with the rendered counterexample.
    ///
    /// # Panics
    ///
    /// Panics if the verdict is a violation.
    pub fn expect_pass(self) -> Exploration {
        match self {
            Verdict::Pass(e) => e,
            Verdict::Violated(cex) => panic!("model checking failed:\n{}", cex.describe()),
        }
    }

    /// The counterexample, or `None` on a pass.
    pub fn violation(self) -> Option<Counterexample<M>> {
        match self {
            Verdict::Pass(_) => None,
            Verdict::Violated(cex) => Some(cex),
        }
    }
}

/// Exhaustively explore `model` from its initial state.
///
/// # Panics
///
/// Panics if more than `max_states` distinct states are discovered — the
/// caller sized the configuration wrongly, and a truncated exploration must
/// never masquerade as a proof.
pub fn check<M: Model>(model: &M, max_states: usize) -> Verdict<M> {
    let initial = model.initial();
    let mut states: Vec<M::State> = vec![initial.clone()];
    let mut index: BTreeMap<M::State, usize> = BTreeMap::from([(initial.clone(), 0)]);
    // parent[i] = (predecessor index, action that produced state i).
    let mut parent: Vec<Option<(usize, M::Action)>> = vec![None];
    let mut depth: Vec<usize> = vec![0];
    let mut queue: VecDeque<usize> = VecDeque::from([0]);
    let mut transitions = 0usize;
    let mut max_depth = 0usize;

    let trace = |parent: &[Option<(usize, M::Action)>],
                 states: &[M::State],
                 mut at: usize,
                 invariant: String| {
        let mut steps = Vec::new();
        while let Some((prev, action)) = &parent[at] {
            steps.push((action.clone(), states[at].clone()));
            at = *prev;
        }
        steps.reverse();
        Counterexample {
            invariant,
            initial: states[0].clone(),
            steps,
        }
    };

    if let Err(why) = model.invariants(&initial) {
        return Verdict::Violated(trace(&parent, &states, 0, why));
    }

    while let Some(at) = queue.pop_front() {
        let actions = model.actions(&states[at]);
        if actions.is_empty() && !model.is_terminal(&states[at]) {
            return Verdict::Violated(trace(
                &parent,
                &states,
                at,
                "progress: state has no enabled transition".to_string(),
            ));
        }
        for action in actions {
            transitions += 1;
            let next = model.apply(&states[at], &action);
            if let Some(&_known) = index.get(&next) {
                continue;
            }
            let id = states.len();
            assert!(
                id < max_states,
                "state space exceeded the {max_states}-state bound"
            );
            index.insert(next.clone(), id);
            states.push(next);
            parent.push(Some((at, action)));
            depth.push(depth[at] + 1);
            max_depth = max_depth.max(depth[id]);
            if let Err(why) = model.invariants(&states[id]) {
                return Verdict::Violated(trace(&parent, &states, id, why));
            }
            queue.push_back(id);
        }
    }

    Verdict::Pass(Exploration {
        states: states.len(),
        transitions,
        depth: max_depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter that wraps at `modulus`; "violating" values are reported,
    /// and `stuck_at` (if any) has no successors.
    struct Counter {
        modulus: u32,
        violate_at: Option<u32>,
        stuck_at: Option<u32>,
    }

    impl Model for Counter {
        type State = u32;
        type Action = char;

        fn initial(&self) -> u32 {
            0
        }

        fn actions(&self, s: &u32) -> Vec<char> {
            if Some(*s) == self.stuck_at {
                Vec::new()
            } else {
                vec!['+']
            }
        }

        fn apply(&self, s: &u32, _a: &char) -> u32 {
            (s + 1) % self.modulus
        }

        fn invariants(&self, s: &u32) -> Result<(), String> {
            if Some(*s) == self.violate_at {
                Err(format!("counter reached {s}"))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn counts_the_full_cycle() {
        let m = Counter {
            modulus: 17,
            violate_at: None,
            stuck_at: None,
        };
        let e = check(&m, 100).expect_pass();
        assert_eq!(e.states, 17);
        assert_eq!(e.transitions, 17);
        assert_eq!(e.depth, 16);
    }

    #[test]
    fn counterexample_is_minimal_and_ordered() {
        let m = Counter {
            modulus: 100,
            violate_at: Some(5),
            stuck_at: None,
        };
        let cex = check(&m, 1000).violation().expect("must violate");
        assert_eq!(cex.steps.len(), 5, "BFS finds the shortest trace");
        assert_eq!(cex.initial, 0);
        assert_eq!(cex.steps.last().expect("non-empty").1, 5);
        let text = cex.describe();
        assert!(text.contains("counter reached 5"), "{text}");
    }

    #[test]
    fn deadlock_is_reported_as_progress_violation() {
        let m = Counter {
            modulus: 10,
            violate_at: None,
            stuck_at: Some(3),
        };
        let cex = check(&m, 100).violation().expect("deadlocks at 3");
        assert!(cex.invariant.contains("no enabled transition"));
        assert_eq!(cex.steps.len(), 3);
    }

    #[test]
    #[should_panic(expected = "state space exceeded")]
    fn bound_overflow_panics_rather_than_truncates() {
        let m = Counter {
            modulus: 1000,
            violate_at: None,
            stuck_at: None,
        };
        let _ = check(&m, 10);
    }
}
