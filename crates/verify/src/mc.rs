//! A small generic explicit-state model checker.
//!
//! [`check`] breadth-first enumerates every state reachable from a
//! [`Model`]'s initial state, deduplicating states in an ordered set (so
//! exploration order — and therefore every reported count — is
//! deterministic), checking the model's safety invariants on each state as
//! it is discovered, and requiring progress: a reachable state with no
//! enabled action is reported as a deadlock unless the model declares it
//! terminal.
//!
//! Because the search is breadth-first, the counterexample reconstructed
//! from the predecessor table on a violation is a *minimal-length* trace:
//! no shorter action sequence reaches any violating state.
//!
//! [`check_reduced`] layers two classical state-space reductions on the
//! same search, for models that opt in via [`ReducibleModel`]:
//!
//! * **Symmetry reduction** — every discovered state is replaced by the
//!   canonical representative of its orbit under the model's symmetry
//!   group before dedup, so the search explores the quotient graph. With
//!   an exact canonicalizer the quotient has one state per orbit, which
//!   for a protocol symmetric in `n` interchangeable CPUs shrinks the
//!   space by up to `n!`.
//! * **Partial-order (ample-set) reduction** — at states where the model
//!   can prove a subset of the enabled actions is *ample* (independent of
//!   every other enabled action, invisible to the invariants, and unable
//!   to close a cycle by itself), only that subset is expanded.
//!
//! Both reductions preserve every safety verdict: a violation is reachable
//! in the reduced graph iff one is reachable in the full graph. Symmetry
//! alone also preserves minimal counterexample *length* (quotient paths
//! lift to full-graph paths of equal length); ample sets may lengthen a
//! counterexample because they commit to an interleaving.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Debug;
use std::fmt::Write as _;

/// A finite-state transition system with checkable invariants.
pub trait Model {
    /// A full system state. `Ord` supplies the deterministic dedup order.
    type State: Clone + Ord + Debug;
    /// One enabled transition out of a state.
    type Action: Clone + Debug;

    /// The single initial state.
    fn initial(&self) -> Self::State;

    /// Every action enabled in `state`, in a deterministic order.
    fn actions(&self, state: &Self::State) -> Vec<Self::Action>;

    /// The successor of `state` under `action`.
    fn apply(&self, state: &Self::State, action: &Self::Action) -> Self::State;

    /// Check every safety invariant of `state`; `Err` names the violated
    /// invariant.
    fn invariants(&self, state: &Self::State) -> Result<(), String>;

    /// Whether `state` is allowed to have no enabled actions. The default
    /// (`false`) makes the checker treat any quiescent state as a deadlock.
    fn is_terminal(&self, _state: &Self::State) -> bool {
        false
    }
}

/// A model whose state space the checker may soundly shrink.
///
/// The two hooks encode proof obligations the *model* discharges; the
/// checker trusts them. Both are exercised against the unreduced search by
/// the reduction-soundness proptest in `verify/tests/proptests.rs`.
pub trait ReducibleModel: Model {
    /// The canonical representative of `state`'s symmetry orbit.
    ///
    /// Obligations: the map must be idempotent, stay within the orbit of
    /// `state` under a group of transition-preserving permutations, and
    /// every invariant (including terminality) must be orbit-invariant —
    /// `invariants(s)` and `invariants(canonical(s))` agree on truth.
    fn canonical(&self, state: &Self::State) -> Self::State;

    /// A sound ample subset of `actions` at `state`, or `None` to expand
    /// every action.
    ///
    /// Obligations on a returned subset: non-empty; each member commutes
    /// with (and stays enabled under) every non-member enabled action;
    /// executing a member never changes the truth of any invariant
    /// (invisibility); and no cycle of the reduced graph consists solely
    /// of ample-chosen transitions (guaranteed here by choosing actions
    /// that strictly decrease a well-founded measure).
    fn ample(&self, state: &Self::State, actions: &[Self::Action]) -> Option<Vec<Self::Action>>;
}

/// Which reductions [`check_reduced`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reduction {
    /// Canonicalize states before dedup (orbit quotient).
    pub symmetry: bool,
    /// Expand only ample action subsets where the model offers one.
    pub por: bool,
}

impl Reduction {
    /// No reduction: `check_reduced` behaves exactly like [`check`].
    pub const NONE: Reduction = Reduction {
        symmetry: false,
        por: false,
    };
    /// Symmetry quotient only (preserves minimal trace length).
    pub const SYMMETRY: Reduction = Reduction {
        symmetry: true,
        por: false,
    };
    /// Symmetry quotient plus ample-set partial-order reduction.
    pub const FULL: Reduction = Reduction {
        symmetry: true,
        por: true,
    };
}

/// Aggregate counts from an exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Exploration {
    /// Distinct reachable states.
    pub states: usize,
    /// Transitions traversed (including those leading to known states).
    pub transitions: usize,
    /// Longest shortest-path distance from the initial state.
    pub depth: usize,
}

/// A minimal-length trace from the initial state to a violating state.
#[derive(Debug, Clone)]
pub struct Counterexample<M: Model> {
    /// The violated invariant (or deadlock description).
    pub invariant: String,
    /// The initial state.
    pub initial: M::State,
    /// The actions taken and the states they produced, in order; the last
    /// state is the violating one.
    pub steps: Vec<(M::Action, M::State)>,
}

impl<M: Model> Counterexample<M> {
    /// Render the trace for humans: the violated invariant, then each
    /// action and resulting state on its own line.
    pub fn describe(&self) -> String {
        let mut s = format!("violated: {}\n  start: {:?}", self.invariant, self.initial);
        for (i, (action, state)) in self.steps.iter().enumerate() {
            let _ = write!(s, "\n  {:>2}. {:?} -> {:?}", i + 1, action, state);
        }
        s
    }
}

/// The outcome of [`check`].
#[derive(Debug, Clone)]
pub enum Verdict<M: Model> {
    /// Every reachable state satisfies every invariant and has a successor.
    Pass(Exploration),
    /// Some reachable state violates an invariant (or deadlocks); the
    /// counterexample is minimal-length.
    Violated(Counterexample<M>),
}

impl<M: Model> Verdict<M> {
    /// The exploration counts, or a panic with the rendered counterexample.
    ///
    /// # Panics
    ///
    /// Panics if the verdict is a violation.
    pub fn expect_pass(self) -> Exploration {
        match self {
            Verdict::Pass(e) => e,
            Verdict::Violated(cex) => panic!("model checking failed:\n{}", cex.describe()),
        }
    }

    /// The counterexample, or `None` on a pass.
    pub fn violation(self) -> Option<Counterexample<M>> {
        match self {
            Verdict::Pass(_) => None,
            Verdict::Violated(cex) => Some(cex),
        }
    }
}

/// Exhaustively explore `model` from its initial state.
///
/// # Panics
///
/// Panics if more than `max_states` distinct states are discovered — the
/// caller sized the configuration wrongly, and a truncated exploration must
/// never masquerade as a proof.
pub fn check<M: Model>(model: &M, max_states: usize) -> Verdict<M> {
    explore(model, max_states, &|s| s.clone(), &|_, acts| acts)
}

/// Explore `model` under the reductions selected by `red`.
///
/// With [`Reduction::NONE`] this is exactly [`check`]. With symmetry the
/// search runs over canonical orbit representatives, so the reported
/// counterexample is a run of the *quotient* system: each recorded state
/// is the canonical form of the state the action produced. Quotient runs
/// lift to concrete runs of equal length by composing the orbit
/// permutations, so the trace is still a faithful minimal witness.
///
/// # Panics
///
/// Panics if more than `max_states` distinct (canonical) states are
/// discovered.
pub fn check_reduced<M: ReducibleModel>(
    model: &M,
    max_states: usize,
    red: Reduction,
) -> Verdict<M> {
    let canon = |s: &M::State| {
        if red.symmetry {
            model.canonical(s)
        } else {
            s.clone()
        }
    };
    let select = |s: &M::State, acts: Vec<M::Action>| {
        if red.por {
            match model.ample(s, &acts) {
                Some(ample) => {
                    debug_assert!(!ample.is_empty(), "ample sets must be non-empty");
                    ample
                }
                None => acts,
            }
        } else {
            acts
        }
    };
    explore(model, max_states, &canon, &select)
}

/// Every distinct state an unreduced search visits, in discovery order, or
/// the violated invariant if the model is unsafe. Used by the
/// reduction-soundness proptest to compare the canonical quotient of the
/// full state set against the reduced search.
///
/// # Errors
///
/// Returns the violated-invariant (or deadlock) description when the model
/// is unsafe; the states discovered up to that point are discarded.
///
/// # Panics
///
/// Panics if more than `max_states` distinct states are discovered.
pub fn reachable<M: Model>(model: &M, max_states: usize) -> Result<Vec<M::State>, String> {
    let mut found = Vec::new();
    match explore_with(
        model,
        max_states,
        &|s| s.clone(),
        &|_, acts| acts,
        &mut |s: &M::State| found.push(s.clone()),
    ) {
        Verdict::Pass(_) => Ok(found),
        Verdict::Violated(cex) => Err(cex.invariant),
    }
}

/// State-canonicalization hook threaded through the search (identity when
/// symmetry reduction is off).
type CanonFn<'a, M> = &'a dyn Fn(&<M as Model>::State) -> <M as Model>::State;

/// Action-selection hook threaded through the search (pass-through when
/// partial-order reduction is off).
type SelectFn<'a, M> =
    &'a dyn Fn(&<M as Model>::State, Vec<<M as Model>::Action>) -> Vec<<M as Model>::Action>;

fn explore<M: Model>(
    model: &M,
    max_states: usize,
    canon: CanonFn<'_, M>,
    select: SelectFn<'_, M>,
) -> Verdict<M> {
    explore_with(model, max_states, canon, select, &mut |_| {})
}

fn explore_with<M: Model>(
    model: &M,
    max_states: usize,
    canon: CanonFn<'_, M>,
    select: SelectFn<'_, M>,
    on_discover: &mut dyn FnMut(&M::State),
) -> Verdict<M> {
    let initial = canon(&model.initial());
    let mut states: Vec<M::State> = vec![initial.clone()];
    let mut index: BTreeMap<M::State, usize> = BTreeMap::from([(initial.clone(), 0)]);
    // parent[i] = (predecessor index, action that produced state i).
    let mut parent: Vec<Option<(usize, M::Action)>> = vec![None];
    let mut depth: Vec<usize> = vec![0];
    let mut queue: VecDeque<usize> = VecDeque::from([0]);
    let mut transitions = 0usize;
    let mut max_depth = 0usize;

    let trace = |parent: &[Option<(usize, M::Action)>],
                 states: &[M::State],
                 mut at: usize,
                 invariant: String| {
        let mut steps = Vec::new();
        while let Some((prev, action)) = &parent[at] {
            steps.push((action.clone(), states[at].clone()));
            at = *prev;
        }
        steps.reverse();
        Counterexample {
            invariant,
            initial: states[0].clone(),
            steps,
        }
    };

    on_discover(&initial);
    if let Err(why) = model.invariants(&initial) {
        return Verdict::Violated(trace(&parent, &states, 0, why));
    }

    while let Some(at) = queue.pop_front() {
        let actions = select(&states[at], model.actions(&states[at]));
        if actions.is_empty() && !model.is_terminal(&states[at]) {
            return Verdict::Violated(trace(
                &parent,
                &states,
                at,
                "progress: state has no enabled transition".to_string(),
            ));
        }
        for action in actions {
            transitions += 1;
            let next = canon(&model.apply(&states[at], &action));
            if let Some(&_known) = index.get(&next) {
                continue;
            }
            let id = states.len();
            assert!(
                id < max_states,
                "state space exceeded the {max_states}-state bound"
            );
            index.insert(next.clone(), id);
            on_discover(&next);
            states.push(next);
            parent.push(Some((at, action)));
            depth.push(depth[at] + 1);
            max_depth = max_depth.max(depth[id]);
            if let Err(why) = model.invariants(&states[id]) {
                return Verdict::Violated(trace(&parent, &states, id, why));
            }
            queue.push_back(id);
        }
    }

    Verdict::Pass(Exploration {
        states: states.len(),
        transitions,
        depth: max_depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter that wraps at `modulus`; "violating" values are reported,
    /// and `stuck_at` (if any) has no successors.
    struct Counter {
        modulus: u32,
        violate_at: Option<u32>,
        stuck_at: Option<u32>,
    }

    impl Model for Counter {
        type State = u32;
        type Action = char;

        fn initial(&self) -> u32 {
            0
        }

        fn actions(&self, s: &u32) -> Vec<char> {
            if Some(*s) == self.stuck_at {
                Vec::new()
            } else {
                vec!['+']
            }
        }

        fn apply(&self, s: &u32, _a: &char) -> u32 {
            (s + 1) % self.modulus
        }

        fn invariants(&self, s: &u32) -> Result<(), String> {
            if Some(*s) == self.violate_at {
                Err(format!("counter reached {s}"))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn counts_the_full_cycle() {
        let m = Counter {
            modulus: 17,
            violate_at: None,
            stuck_at: None,
        };
        let e = check(&m, 100).expect_pass();
        assert_eq!(e.states, 17);
        assert_eq!(e.transitions, 17);
        assert_eq!(e.depth, 16);
    }

    #[test]
    fn counterexample_is_minimal_and_ordered() {
        let m = Counter {
            modulus: 100,
            violate_at: Some(5),
            stuck_at: None,
        };
        let cex = check(&m, 1000).violation().expect("must violate");
        assert_eq!(cex.steps.len(), 5, "BFS finds the shortest trace");
        assert_eq!(cex.initial, 0);
        assert_eq!(cex.steps.last().expect("non-empty").1, 5);
        let text = cex.describe();
        assert!(text.contains("counter reached 5"), "{text}");
    }

    #[test]
    fn deadlock_is_reported_as_progress_violation() {
        let m = Counter {
            modulus: 10,
            violate_at: None,
            stuck_at: Some(3),
        };
        let cex = check(&m, 100).violation().expect("deadlocks at 3");
        assert!(cex.invariant.contains("no enabled transition"));
        assert_eq!(cex.steps.len(), 3);
    }

    #[test]
    #[should_panic(expected = "state space exceeded")]
    fn bound_overflow_panics_rather_than_truncates() {
        let m = Counter {
            modulus: 1000,
            violate_at: None,
            stuck_at: None,
        };
        let _ = check(&m, 10);
    }

    /// `n` interchangeable tokens, each counting 0..`cap`; terminal when
    /// all are saturated. Fully symmetric under token permutation, and
    /// increments commute, so both reductions apply.
    struct Tokens {
        n: usize,
        cap: u8,
        violate_at: Option<u8>,
    }

    impl Model for Tokens {
        type State = Vec<u8>;
        type Action = usize;

        fn initial(&self) -> Vec<u8> {
            vec![0; self.n]
        }

        fn actions(&self, s: &Vec<u8>) -> Vec<usize> {
            (0..self.n).filter(|&i| s[i] + 1 < self.cap).collect()
        }

        fn apply(&self, s: &Vec<u8>, a: &usize) -> Vec<u8> {
            let mut next = s.clone();
            next[*a] += 1;
            next
        }

        fn invariants(&self, s: &Vec<u8>) -> Result<(), String> {
            match self.violate_at {
                Some(v) if s.contains(&v) => Err(format!("a token reached {v}")),
                _ => Ok(()),
            }
        }

        fn is_terminal(&self, s: &Vec<u8>) -> bool {
            s.iter().all(|&t| t + 1 == self.cap)
        }
    }

    impl ReducibleModel for Tokens {
        fn canonical(&self, s: &Vec<u8>) -> Vec<u8> {
            let mut c = s.clone();
            c.sort_unstable();
            c
        }

        fn ample(&self, _s: &Vec<u8>, actions: &[usize]) -> Option<Vec<usize>> {
            // Increments commute, are invisible when no violation value is
            // configured, and strictly increase the token sum (no
            // ample-only cycles): the smallest enabled one is ample.
            if self.violate_at.is_some() {
                return None;
            }
            actions.first().map(|&a| vec![a])
        }
    }

    #[test]
    fn reduction_none_matches_the_plain_search_exactly() {
        let m = Tokens {
            n: 3,
            cap: 3,
            violate_at: None,
        };
        let plain = check(&m, 1000).expect_pass();
        let none = check_reduced(&m, 1000, Reduction::NONE).expect_pass();
        assert_eq!(plain, none);
        assert_eq!(plain.states, 27, "3 tokens x 3 values");
    }

    #[test]
    fn symmetry_explores_one_state_per_orbit() {
        let m = Tokens {
            n: 3,
            cap: 3,
            violate_at: None,
        };
        let sym = check_reduced(&m, 1000, Reduction::SYMMETRY).expect_pass();
        // Multisets of 3 values drawn from {0,1,2}: C(5,2) = 10 orbits.
        assert_eq!(sym.states, 10);
    }

    #[test]
    fn ample_sets_collapse_commuting_interleavings() {
        let m = Tokens {
            n: 3,
            cap: 3,
            violate_at: None,
        };
        let full = check_reduced(&m, 1000, Reduction::FULL).expect_pass();
        // One committed interleaving: the 6-increment chain to saturation.
        assert_eq!(full.states, 7);
        assert_eq!(full.depth, 6);
    }

    #[test]
    fn symmetry_preserves_verdict_and_minimal_trace_length() {
        let m = Tokens {
            n: 3,
            cap: 4,
            violate_at: Some(2),
        };
        let plain = check(&m, 1000).violation().expect("unsafe");
        let sym = check_reduced(&m, 1000, Reduction::SYMMETRY)
            .violation()
            .expect("unsafe");
        assert_eq!(plain.invariant, sym.invariant);
        assert_eq!(plain.steps.len(), sym.steps.len());
        assert_eq!(sym.steps.len(), 2, "two increments reach the bad value");
    }

    #[test]
    fn reachable_returns_every_state_or_the_violated_invariant() {
        let safe = Tokens {
            n: 2,
            cap: 3,
            violate_at: None,
        };
        let all = reachable(&safe, 1000).expect("safe model");
        assert_eq!(all.len(), 9);
        let unsafe_m = Tokens {
            n: 2,
            cap: 3,
            violate_at: Some(1),
        };
        let why = reachable(&unsafe_m, 1000).expect_err("unsafe model");
        assert!(why.contains("reached 1"), "{why}");
    }
}
