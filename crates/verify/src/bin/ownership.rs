//! Epoch-engine ownership lint, `-D` semantics: any partition violation is
//! fatal. Run as `cargo run -p verify --bin ownership`.

use verify::ownership;

fn main() {
    let root = verify::workspace_root();
    let scan = match ownership::scan_workspace(&root) {
        Ok(scan) => scan,
        Err(e) => {
            eprintln!("ownership: cannot scan {}: {e}", root.display());
            std::process::exit(2);
        }
    };
    print!("{}", ownership::describe(&scan.findings));
    for (ty, fields) in &scan.access {
        let reads: usize = fields.values().map(|a| a.reads).sum();
        let writes: usize = fields.values().map(|a| a.writes).sum();
        let barrier: usize = fields.values().map(|a| a.barrier).sum();
        println!(
            "ownership: {ty}: {} field(s), {reads} read(s), {writes} write(s), \
             {barrier} barrier-path access(es)",
            fields.len()
        );
    }
    println!(
        "ownership lint: {} file(s) scanned, {} partition violation(s)",
        scan.files,
        scan.findings.len()
    );
    if !scan.findings.is_empty() {
        std::process::exit(1);
    }
}
