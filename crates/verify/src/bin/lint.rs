//! Workspace determinism lint, `-D` semantics: any unexplained finding is
//! fatal. Run as `cargo run -p verify --bin lint`.

use verify::lint;

fn main() {
    let root = verify::workspace_root();
    let out = match lint::scan_workspace(&root) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("lint: cannot scan {}: {e}", root.display());
            std::process::exit(2);
        }
    };
    let rules = lint::rules();
    for f in &out.findings {
        let advice = rules
            .iter()
            .find(|r| r.name == f.rule)
            .map(|r| r.advice)
            .unwrap_or_default();
        println!(
            "{}:{}: [{}] {}\n    note: {advice}\n    note: silence an audited exception with `// lint-allow: {}`",
            f.file.display(),
            f.line,
            f.rule,
            f.excerpt,
            f.rule,
        );
    }
    println!(
        "determinism lint: {} file(s) scanned, {} allowed exception(s), {} unexplained finding(s)",
        out.files,
        out.allowed,
        out.findings.len()
    );
    if !out.findings.is_empty() {
        std::process::exit(1);
    }
}
