//! Regenerate (or check) the `results/verify.json` verification artifact.
//!
//! ```text
//! cargo run --release -p verify --bin report                   # rewrite
//! cargo run --release -p verify --bin report -- --check PATH   # assert byte-identical
//! ```

use verify::report;

fn main() {
    let mut check = false;
    let mut path = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            other => path = Some(other.to_string()),
        }
    }
    let root = verify::workspace_root();
    let path = path.map_or_else(|| root.join("results/verify.json"), Into::into);
    let fresh = report::to_json(&report::build(&root));
    if check {
        let committed = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("verify report: cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        if committed == fresh {
            println!("verify report: {} is up to date", path.display());
        } else {
            eprintln!(
                "verify report: {} is stale — regenerate with `cargo run --release -p verify --bin report`",
                path.display()
            );
            std::process::exit(1);
        }
    } else if let Err(e) = std::fs::write(&path, &fresh) {
        eprintln!("verify report: cannot write {}: {e}", path.display());
        std::process::exit(2);
    } else {
        println!("verify report: wrote {}", path.display());
    }
}
