//! Regenerate (or check) the `results/verify.json` verification artifact,
//! or run one targeted analysis for the CI matrix.
//!
//! ```text
//! cargo run --release -p verify --bin report                   # rewrite
//! cargo run --release -p verify --bin report -- --check PATH   # assert byte-identical
//! cargo run --release -p verify --bin report -- --mc 6         # recovery protocol, 6 CPUs
//! cargo run --release -p verify --bin report -- --cdg 32x32    # certify one torus
//! ```
//!
//! `--mc N` exhausts the fault-extended recovery protocol at N CPUs under
//! symmetry + partial-order reduction and re-catches every seeded
//! mutation; `--cdg CxR` certifies the healthy C×R torus acyclic and
//! sweeps its degraded configurations (exhaustively at 8×8 and below,
//! seeded-sampled above). Both exit non-zero on any violation.

use verify::mc::{check_reduced, Reduction, Verdict};
use verify::protocol::{Mutation, ProtocolModel};
use verify::{cdg, report};

fn run_mc(cpus: usize) {
    let max_retries = if cpus <= 3 { 2 } else { 1 };
    let model = ProtocolModel::recovery(cpus, max_retries);
    match check_reduced(&model, 2_000_000, Reduction::FULL) {
        Verdict::Pass(e) => println!(
            "mc: recovery protocol clean at {cpus} CPUs (max_retries {max_retries}): \
             {} states, {} transitions, depth {}",
            e.states, e.transitions, e.depth
        ),
        Verdict::Violated(cex) => {
            eprintln!(
                "mc: recovery protocol violated at {cpus} CPUs:\n{}",
                cex.describe()
            );
            std::process::exit(1);
        }
    }
    for m in Mutation::SEEDED.iter().chain(&Mutation::RECOVERY_SEEDED) {
        let mutated = ProtocolModel::recovery_mutated(cpus.min(4), max_retries, *m);
        match check_reduced(&mutated, 2_000_000, Reduction::FULL) {
            Verdict::Violated(cex) => println!(
                "mc: mutation {} caught in {} steps (violates: {})",
                m.id(),
                cex.steps.len(),
                cex.invariant
            ),
            Verdict::Pass(_) => {
                eprintln!("mc: seeded mutation {} was NOT caught", m.id());
                std::process::exit(1);
            }
        }
    }
}

fn run_cdg(spec: &str) {
    let (cols, rows) = spec
        .split_once('x')
        .and_then(|(c, r)| Some((c.parse().ok()?, r.parse().ok()?)))
        .unwrap_or_else(|| {
            eprintln!("cdg: expected COLSxROWS, got {spec:?}");
            std::process::exit(2);
        });
    let healthy = cdg::healthy_torus(cols, rows, true)
        .verdict()
        .expect_acyclic();
    println!(
        "cdg: healthy {cols}x{rows} torus acyclic ({} channels, {} edges)",
        healthy.channels, healthy.edges
    );
    let sweep = if cols * rows <= 64 {
        cdg::sweep_single_cuts(cols, rows)
    } else {
        cdg::sweep_sampled_single_cuts(cols, rows, 16, cdg::SAMPLE_SEED)
    };
    match sweep {
        Ok(s) => println!(
            "cdg: {} degraded configuration(s) acyclic (max {} channels, {} edges)",
            s.configs, s.max_channels, s.max_edges
        ),
        Err(e) => {
            eprintln!("cdg: degraded sweep failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--mc") => {
            let cpus = args.get(1).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("--mc requires a CPU count (2..=8)");
                std::process::exit(2);
            });
            run_mc(cpus);
            return;
        }
        Some("--cdg") => {
            let spec = args.get(1).cloned().unwrap_or_else(|| {
                eprintln!("--cdg requires a COLSxROWS torus spec");
                std::process::exit(2);
            });
            run_cdg(&spec);
            return;
        }
        _ => {}
    }
    let mut check = false;
    let mut path = None;
    for arg in args {
        match arg.as_str() {
            "--check" => check = true,
            other => path = Some(other.to_string()),
        }
    }
    let root = verify::workspace_root();
    let path = path.map_or_else(|| root.join("results/verify.json"), Into::into);
    let fresh = report::to_json(&report::build(&root));
    if check {
        let committed = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("verify report: cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        if committed == fresh {
            println!("verify report: {} is up to date", path.display());
        } else {
            eprintln!(
                "verify report: {} is stale — regenerate with `cargo run --release -p verify --bin report`",
                path.display()
            );
            std::process::exit(1);
        }
    } else if let Err(e) = std::fs::write(&path, &fresh) {
        eprintln!("verify report: cannot write {}: {e}", path.display());
        std::process::exit(2);
    } else {
        println!("verify report: wrote {}", path.display());
    }
}
