//! Static verification of the GS1280 reproduction.
//!
//! Four analyses, all wired into CI:
//!
//! * [`mc`] + [`protocol`] — an explicit-state **model checker**: a generic
//!   BFS kernel driven by a transition relation extracted from
//!   `alphasim-coherence` (the real [`Directory`] runs inside every
//!   transition). It exhaustively enumerates the reachable space of
//!   (directory line state × in-flight transactions × timeout/NAK/poison
//!   states), checks safety (exactly one exclusive owner, no stale sharer
//!   survives a write, poison never leaves a pending entry) and progress
//!   (every reachable state has an enabled transition; retry backoff
//!   saturates at its cap), and prints a minimal-length counterexample
//!   trace on violation. CPU-permutation **symmetry reduction** and an
//!   ample-set **partial-order reduction** ([`mc::Reduction`]) shrink the
//!   search enough to exhaust the fault-extended recovery protocol (link
//!   failure/repair racing timeout–NAK–poison–retry) at 6–8 CPUs.
//! * [`cdg`] — a **channel-dependency-graph analyzer** generalizing the
//!   in-crate `escape_network_is_acyclic` spot check: the full CDG over
//!   (directed link × dateline VC × coherence class), including the
//!   cross-class edges of `MessageClass::may_generate`, verified acyclic on
//!   the healthy torus *and* under degraded topologies the fault campaigns
//!   produce (single and double link cuts, routed up*/down*), reporting the
//!   offending cycle otherwise. A streaming builder certifies P×Q tori up
//!   to 32×32; deterministic seeded sampling keeps the degraded sweeps
//!   tractable at scale.
//! * [`ownership`] — a **partition lint** for the epoch-parallel engine:
//!   statically proves workers touch only region-owned state, cross-region
//!   effects flow only through the outbox, and the guide mutates workers
//!   only through an `EpochControl` handle at barriers.
//! * [`lint`] — a **determinism lint** over the workspace sources: flags
//!   reproducibility hazards (hash-ordered containers, wall-clock reads,
//!   ambient RNG, truncating casts in timing arithmetic) outside test code,
//!   with `// lint-allow: <rule>` escape comments for the audited
//!   exceptions; an allow comment whose rule no longer fires anywhere on
//!   its line is itself flagged as stale. `cargo run -p verify --bin lint`
//!   exits non-zero on any unexplained finding.
//!
//! The `report` binary regenerates `results/verify.json` (state counts per
//! configuration, CDG sweep summaries, lint totals) deterministically;
//! `--check` asserts the committed artifact is byte-identical.
//!
//! [`Directory`]: alphasim_coherence::Directory

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod cdg;
pub mod lint;
pub mod mc;
pub mod ownership;
pub mod protocol;
pub mod report;

pub use cdg::{Cdg, CdgVerdict, Channel, SweepSummary};
pub use lint::{scan_workspace, Finding};
pub use mc::{check, check_reduced, Counterexample, Exploration, Model, Reduction, Verdict};
pub use ownership::{OwnershipFinding, OwnershipScan};
pub use protocol::{backoff_saturates, Mutation, ProtocolModel};

use std::path::{Path, PathBuf};

/// The workspace root, resolved from this crate's manifest directory.
///
/// # Panics
///
/// Panics if the crate is somehow not two levels below the workspace root.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/verify sits two levels below the workspace root")
        .to_path_buf()
}
