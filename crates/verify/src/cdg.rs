//! Channel-dependency-graph deadlock analyzer.
//!
//! Dally & Seitz: a routing function is deadlock-free iff its channel
//! dependency graph (CDG) is acyclic. This module builds the *full* CDG of
//! the escape network — one vertex per (directed physical link, dateline
//! virtual channel, coherence class) triple — from the actual routing
//! functions in `alphasim-topology`, adds the cross-class protocol edges of
//! [`MessageClass::may_generate`], and searches it for cycles, reporting the
//! offending channel sequence when one exists.
//!
//! Two kinds of dependency edge:
//!
//! * **Routing edges**: a packet holding channel `a` waits for channel `b`
//!   when `b` is the next hop of some route — every consecutive hop pair of
//!   every (src, dst) path, per class (classes ride disjoint VC lanes, so a
//!   routing edge never crosses classes).
//! * **Protocol edges**: a class-`c` packet arriving at node `v` can cause
//!   the protocol to emit a class-`c'` packet from `v` (`c'` in
//!   `c.may_generate()`), so every final hop of a `c`-route into `v`
//!   depends on every first hop of a `c'`-route out of `v`. The Io → Io
//!   self-generation edge is deliberately excluded: an Io packet is
//!   consumed at its endpoint and the reply is a fresh injection behind the
//!   endpoint's sink buffer, so it cannot hold fabric channels while
//!   waiting — including it would manufacture cycles no real dependency
//!   creates.
//!
//! Healthy tori route with the dimension-order + dateline-VC escape
//! function ([`escape_path`]); degraded (link-cut) fabrics route up*/down*
//! ([`UpDownRoutes`]), which works on any connected graph. The sweep
//! drivers enumerate every single and double link cut the fault campaigns
//! can produce and re-verify each one.

use std::collections::{BTreeMap, BTreeSet};

use alphasim_net::MessageClass;
use alphasim_topology::graph::DistanceMatrix;
use alphasim_topology::route::{escape_path, EscapeChannel};
use alphasim_topology::{Degraded, NodeId, Topology, Torus2D, UpDownError, UpDownRoutes};

/// One CDG vertex: a virtual channel on a directed physical link, owned by
/// one coherence class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Channel {
    /// Source node of the directed link.
    pub from: NodeId,
    /// Destination node of the directed link.
    pub to: NodeId,
    /// Dateline / up-down virtual channel (0 or 1).
    pub vc: u8,
    /// Coherence class lane.
    pub class: MessageClass,
}

/// The channel dependency graph of one routed topology.
#[derive(Debug, Clone)]
pub struct Cdg {
    /// Vertices in ascending order; index is the vertex id.
    channels: Vec<Channel>,
    /// Adjacency by vertex id, deterministic order.
    adj: Vec<BTreeSet<usize>>,
}

/// Aggregate size of a CDG, for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CdgReport {
    /// Number of (link, VC, class) vertices.
    pub channels: usize,
    /// Number of dependency edges.
    pub edges: usize,
}

/// The outcome of a cycle search.
#[derive(Debug, Clone)]
pub enum CdgVerdict {
    /// No cycle: the routed fabric is deadlock-free.
    Acyclic(CdgReport),
    /// A dependency cycle: the channels in order, with the first repeated
    /// at the end to close the loop.
    Cycle(Vec<Channel>),
}

impl CdgVerdict {
    /// The report, or a panic describing the cycle.
    ///
    /// # Panics
    ///
    /// Panics if the verdict is a cycle.
    pub fn expect_acyclic(self) -> CdgReport {
        match self {
            CdgVerdict::Acyclic(r) => r,
            CdgVerdict::Cycle(c) => panic!("{}", describe_cycle(&c)),
        }
    }

    /// The cycle, or `None` when acyclic.
    pub fn cycle(self) -> Option<Vec<Channel>> {
        match self {
            CdgVerdict::Acyclic(_) => None,
            CdgVerdict::Cycle(c) => Some(c),
        }
    }
}

/// Render a cycle for humans, one channel per line.
pub fn describe_cycle(cycle: &[Channel]) -> String {
    let mut s = String::from("channel dependency cycle:");
    for c in cycle {
        s.push_str(&format!(
            "\n  {} -> {} vc{} [{:?}]",
            c.from.index(),
            c.to.index(),
            c.vc,
            c.class
        ));
    }
    s
}

/// Streaming CDG construction: paths are fed one at a time into a compact
/// *class-less* hop graph, and the per-class expansion happens once at
/// [`finish`](CdgBuilder::finish). Routing is class-oblivious (classes ride
/// disjoint VC lanes of the same physical route), so the hop graph is 5×
/// smaller than the final CDG and the hot per-path loop never touches
/// classes at all. At 32×32 this replaces a ~million-path materialization
/// (hundreds of megabytes) with a graph bounded by the link count.
#[derive(Debug, Default)]
pub struct CdgBuilder {
    /// Hop id by channel; ids are assigned in first-seen order and
    /// re-ranked into ascending order at `finish`.
    hop_id: BTreeMap<EscapeChannel, usize>,
    hops: Vec<EscapeChannel>,
    /// Class-less routing edges between hop ids.
    edges: BTreeSet<(usize, usize)>,
    /// Per-node first hops of some route out of it (hop ids).
    first_from: BTreeMap<NodeId, BTreeSet<usize>>,
    /// Per-node last hops of some route into it (hop ids).
    last_into: BTreeMap<NodeId, BTreeSet<usize>>,
}

impl CdgBuilder {
    /// An empty builder.
    pub fn new() -> CdgBuilder {
        CdgBuilder::default()
    }

    fn intern(&mut self, hop: EscapeChannel) -> usize {
        if let Some(&id) = self.hop_id.get(&hop) {
            return id;
        }
        let id = self.hops.len();
        self.hop_id.insert(hop, id);
        self.hops.push(hop);
        id
    }

    /// Ingest one (src, dst) escape path. Empty paths (src == dst) are
    /// ignored.
    pub fn add_path(&mut self, path: &[EscapeChannel]) {
        let (Some(&first), Some(&last)) = (path.first(), path.last()) else {
            return; // src == dst: no fabric hops
        };
        let fid = self.intern(first);
        let lid = self.intern(last);
        self.first_from.entry(first.from).or_default().insert(fid);
        self.last_into.entry(last.to).or_default().insert(lid);
        let mut prev = fid;
        for &hop in &path[1..] {
            let id = self.intern(hop);
            self.edges.insert((prev, id));
            prev = id;
        }
    }

    /// Expand the class-less hop graph into the full per-class CDG.
    pub fn finish(self) -> Cdg {
        let nclass = MessageClass::ALL.len();
        // Re-rank hops into ascending EscapeChannel order so vertex id
        // `rank * nclass + class` lists channels in ascending Channel
        // order (class is the least-significant Ord component).
        let mut order: Vec<usize> = (0..self.hops.len()).collect();
        order.sort_unstable_by_key(|&i| self.hops[i]);
        let mut rank = vec![0usize; self.hops.len()];
        for (r, &i) in order.iter().enumerate() {
            rank[i] = r;
        }
        let mut channels = Vec::with_capacity(self.hops.len() * nclass);
        for &i in &order {
            for class in MessageClass::ALL {
                channels.push(lane(self.hops[i], class));
            }
        }
        let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); channels.len()];
        // Routing edges: consecutive hops of every path, per class lane.
        for &(a, b) in &self.edges {
            for k in 0..nclass {
                adj[rank[a] * nclass + k].insert(rank[b] * nclass + k);
            }
        }
        // Protocol edges: last hop of a c-route into v depends on first
        // hops of c'-routes out of v, for c' generated by c. Io's
        // self-generation is excluded (endpoint-sink assumption, see the
        // module docs) — which `c != c'` covers, since no other class
        // generates itself.
        for (&v, lasts) in &self.last_into {
            let Some(firsts) = self.first_from.get(&v) else {
                continue;
            };
            for (ci, c) in MessageClass::ALL.into_iter().enumerate() {
                for &c2 in c.may_generate() {
                    if c2 == c {
                        continue;
                    }
                    let cj = MessageClass::ALL
                        .iter()
                        .position(|&x| x == c2)
                        .expect("may_generate stays within ALL");
                    for &l in lasts {
                        for &f in firsts {
                            adj[rank[l] * nclass + ci].insert(rank[f] * nclass + cj);
                        }
                    }
                }
            }
        }
        Cdg { channels, adj }
    }
}

impl Cdg {
    /// Build the full CDG from per-pair hop sequences (class-less escape
    /// paths; each is replicated across every coherence class lane).
    /// Convenience wrapper over [`CdgBuilder`] for callers that already
    /// hold the paths.
    pub fn build(paths: &[Vec<EscapeChannel>]) -> Cdg {
        let mut b = CdgBuilder::new();
        for path in paths {
            b.add_path(path);
        }
        b.finish()
    }

    /// Number of vertices.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(BTreeSet::len).sum()
    }

    /// Search for a dependency cycle (iterative DFS, deterministic order).
    pub fn verdict(&self) -> CdgVerdict {
        let n = self.channels.len();
        let mut color = vec![0u8; n]; // 0 white, 1 on stack, 2 done
                                      // Edges materialized once so the DFS stack stays index-based.
        let out: Vec<Vec<usize>> = self
            .adj
            .iter()
            .map(|s| s.iter().copied().collect())
            .collect();
        for start in 0..n {
            if color[start] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = 1;
            while let Some(&(u, i)) = stack.last() {
                if i < out[u].len() {
                    stack.last_mut().expect("stack non-empty").1 += 1;
                    let v = out[u][i];
                    match color[v] {
                        0 => {
                            color[v] = 1;
                            stack.push((v, 0));
                        }
                        1 => {
                            let pos = stack
                                .iter()
                                .position(|&(w, _)| w == v)
                                .expect("grey vertex is on the stack");
                            let mut cycle: Vec<Channel> = stack[pos..]
                                .iter()
                                .map(|&(w, _)| self.channels[w])
                                .collect();
                            cycle.push(self.channels[v]);
                            return CdgVerdict::Cycle(cycle);
                        }
                        _ => {}
                    }
                } else {
                    color[u] = 2;
                    stack.pop();
                }
            }
        }
        CdgVerdict::Acyclic(CdgReport {
            channels: self.channel_count(),
            edges: self.edge_count(),
        })
    }
}

fn lane(hop: EscapeChannel, class: MessageClass) -> Channel {
    Channel {
        from: hop.from,
        to: hop.to,
        vc: hop.vc,
        class,
    }
}

/// The CDG of the healthy `cols`×`rows` torus under dimension-order escape
/// routing, with or without the dateline VCs.
pub fn healthy_torus(cols: usize, rows: usize, dateline_vcs: bool) -> Cdg {
    let torus = Torus2D::new(cols, rows);
    let n = torus.node_count();
    let mut b = CdgBuilder::new();
    for src in 0..n {
        for dst in 0..n {
            if src != dst {
                b.add_path(&escape_path(
                    &torus,
                    NodeId::new(src),
                    NodeId::new(dst),
                    dateline_vcs,
                ));
            }
        }
    }
    b.finish()
}

/// The CDG of an arbitrary connected topology under up*/down* escape
/// routing (the degraded-fabric fallback).
pub fn degraded<T: Topology + ?Sized>(topo: &T) -> Result<Cdg, UpDownError> {
    let routes = UpDownRoutes::compute(topo)?;
    let mut b = CdgBuilder::new();
    routes.for_each_pair(topo, |path| b.add_path(path));
    Ok(b.finish())
}

/// Every undirected link of `topo`, as `(low, high)` pairs in ascending
/// order — the enumeration the cut sweeps iterate over.
pub fn undirected_links<T: Topology + ?Sized>(topo: &T) -> Vec<(NodeId, NodeId)> {
    let mut links = BTreeSet::new();
    for n in 0..topo.node_count() {
        let a = NodeId::new(n);
        for p in topo.ports(a) {
            let (lo, hi) = if a <= p.to { (a, p.to) } else { (p.to, a) };
            links.insert((lo, hi));
        }
    }
    links.into_iter().collect()
}

/// Aggregate outcome of a cut sweep: every configuration verified acyclic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SweepSummary {
    /// Degraded configurations verified.
    pub configs: usize,
    /// Configurations skipped because the cuts disconnected the fabric
    /// (always 0 on a torus with at most two cuts; kept as a guard).
    pub disconnected: usize,
    /// Largest CDG vertex count across configurations.
    pub max_channels: usize,
    /// Largest CDG edge count across configurations.
    pub max_edges: usize,
}

fn verify_cuts(
    cols: usize,
    rows: usize,
    cuts: &[(NodeId, NodeId)],
    summary: &mut SweepSummary,
) -> Result<(), String> {
    let deg = Degraded::new(Torus2D::new(cols, rows), cuts);
    if !DistanceMatrix::compute(&deg).is_connected() {
        summary.disconnected += 1;
        return Ok(());
    }
    let cdg = degraded(&deg).map_err(|e| format!("cuts {cuts:?}: {e:?}"))?;
    match cdg.verdict() {
        CdgVerdict::Acyclic(r) => {
            summary.configs += 1;
            summary.max_channels = summary.max_channels.max(r.channels);
            summary.max_edges = summary.max_edges.max(r.edges);
            Ok(())
        }
        CdgVerdict::Cycle(c) => Err(format!("cuts {cuts:?}: {}", describe_cycle(&c))),
    }
}

/// Verify every single-link-cut degradation of the `cols`×`rows` torus.
pub fn sweep_single_cuts(cols: usize, rows: usize) -> Result<SweepSummary, String> {
    let links = undirected_links(&Torus2D::new(cols, rows));
    let mut summary = SweepSummary {
        configs: 0,
        disconnected: 0,
        max_channels: 0,
        max_edges: 0,
    };
    for &cut in &links {
        verify_cuts(cols, rows, &[cut], &mut summary)?;
    }
    Ok(summary)
}

/// Verify every double-link-cut degradation of the `cols`×`rows` torus.
pub fn sweep_double_cuts(cols: usize, rows: usize) -> Result<SweepSummary, String> {
    let links = undirected_links(&Torus2D::new(cols, rows));
    let mut summary = SweepSummary {
        configs: 0,
        disconnected: 0,
        max_channels: 0,
        max_edges: 0,
    };
    for i in 0..links.len() {
        for j in (i + 1)..links.len() {
            verify_cuts(cols, rows, &[links[i], links[j]], &mut summary)?;
        }
    }
    Ok(summary)
}

/// The fixed seed every sampled sweep derives its draw from, committed so
/// the sampled configuration set — and therefore the goldens in
/// `results/verify.json` — is reproducible everywhere.
pub const SAMPLE_SEED: u64 = 0x5b21_364c_d61a_0001;

/// SplitMix64: a tiny, fully deterministic generator for the cut samplers
/// (explicitly seeded — never ambient).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The first `sample` elements of a seeded Fisher–Yates shuffle of
/// `0..pool` — a uniform, duplicate-free, deterministic index sample.
fn sample_indices(pool: usize, sample: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..pool).collect();
    let mut state = seed;
    let take = sample.min(pool);
    for i in 0..take {
        let j = i + (splitmix64(&mut state) as usize) % (pool - i);
        idx.swap(i, j);
    }
    idx.truncate(take);
    idx.sort_unstable(); // ascending, so sweep order is by link order
    idx
}

/// Verify a deterministic seeded sample of `sample` single-link cuts of
/// the `cols`×`rows` torus — the coverage strategy where the exhaustive
/// sweep is infeasible (a 32×32 torus has 2048 links, each an up*/down*
/// recompute over 1024 nodes).
pub fn sweep_sampled_single_cuts(
    cols: usize,
    rows: usize,
    sample: usize,
    seed: u64,
) -> Result<SweepSummary, String> {
    let links = undirected_links(&Torus2D::new(cols, rows));
    let mut summary = SweepSummary {
        configs: 0,
        disconnected: 0,
        max_channels: 0,
        max_edges: 0,
    };
    for i in sample_indices(links.len(), sample, seed) {
        verify_cuts(cols, rows, &[links[i]], &mut summary)?;
    }
    Ok(summary)
}

/// Verify a deterministic seeded sample of `sample` double-link cuts of
/// the `cols`×`rows` torus, drawn uniformly from every unordered link
/// pair.
pub fn sweep_sampled_double_cuts(
    cols: usize,
    rows: usize,
    sample: usize,
    seed: u64,
) -> Result<SweepSummary, String> {
    let links = undirected_links(&Torus2D::new(cols, rows));
    let n = links.len();
    let pairs = n * (n - 1) / 2;
    let mut summary = SweepSummary {
        configs: 0,
        disconnected: 0,
        max_channels: 0,
        max_edges: 0,
    };
    for flat in sample_indices(pairs, sample, seed) {
        // Unrank `flat` into the (i, j) pair with i < j, row-major over
        // the strictly-upper-triangular pair matrix.
        let mut i = 0usize;
        let mut base = 0usize;
        while base + (n - 1 - i) <= flat {
            base += n - 1 - i;
            i += 1;
        }
        let j = i + 1 + (flat - base);
        verify_cuts(cols, rows, &[links[i], links[j]], &mut summary)?;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_torus_with_datelines_is_acyclic() {
        let r = healthy_torus(4, 4, true).verdict().expect_acyclic();
        // Every directed link (16 nodes × 4 ports) carries VC0 traffic in
        // all 5 class lanes; the VC1 copies exist only where some path
        // actually crosses a dateline first.
        let vc0_floor = 16 * 4 * 5;
        assert!(
            (vc0_floor..=2 * vc0_floor).contains(&r.channels),
            "channels = {}",
            r.channels
        );
        assert!(r.edges > r.channels);
    }

    #[test]
    fn single_vc_torus_has_a_real_reported_cycle() {
        let cdg = healthy_torus(4, 4, false);
        let cycle = cdg.verdict().cycle().expect("wrap rings must cycle");
        assert!(cycle.len() >= 3, "{}", describe_cycle(&cycle));
        assert_eq!(
            cycle.first(),
            cycle.last(),
            "cycle must close on its first channel"
        );
        // Every consecutive pair must be a genuine dependency: same class
        // lane, linked head-to-tail through a node or a protocol turn.
        for pair in cycle.windows(2) {
            assert!(
                pair[0].to == pair[1].from,
                "consecutive cycle channels must chain through a node: {}",
                describe_cycle(&cycle)
            );
        }
    }

    #[test]
    fn every_single_cut_of_the_4x4_torus_is_deadlock_free() {
        let s = sweep_single_cuts(4, 4).expect("all single cuts acyclic");
        assert_eq!(s.configs, 32, "4x4 torus has 32 undirected links");
        assert_eq!(s.disconnected, 0);
        assert!(s.max_channels > 0 && s.max_edges > 0);
    }

    #[test]
    fn double_cut_sweep_covers_every_pair_on_a_small_torus() {
        let s = sweep_double_cuts(3, 3).expect("all double cuts acyclic");
        // 3x3 torus: 18 undirected links, C(18,2) pairs, none disconnecting.
        assert_eq!(s.configs + s.disconnected, 18 * 17 / 2);
        assert_eq!(s.disconnected, 0);
    }

    #[test]
    fn undirected_link_enumeration_matches_the_torus() {
        let t = Torus2D::new(4, 4);
        let links = undirected_links(&t);
        assert_eq!(links.len(), t.link_count() / 2);
        assert!(links.windows(2).all(|w| w[0] < w[1]), "sorted and deduped");
    }

    #[test]
    fn streaming_builder_matches_the_collected_build() {
        let torus = Torus2D::new(4, 4);
        let mut paths = Vec::new();
        for src in 0..16 {
            for dst in 0..16 {
                if src != dst {
                    paths.push(escape_path(
                        &torus,
                        NodeId::new(src),
                        NodeId::new(dst),
                        true,
                    ));
                }
            }
        }
        let collected = Cdg::build(&paths);
        let streamed = healthy_torus(4, 4, true);
        assert_eq!(collected.channels, streamed.channels);
        assert_eq!(collected.adj, streamed.adj);
    }

    #[test]
    fn channels_are_sorted_ascending_after_class_expansion() {
        let cdg = healthy_torus(3, 3, true);
        assert!(
            cdg.channels.windows(2).all(|w| w[0] < w[1]),
            "vertex ids must follow ascending Channel order"
        );
    }

    #[test]
    fn large_tori_certify_acyclic() {
        // The 16×16 (256P) healthy escape network; 32×32 runs in the
        // release-mode report binary (this doubles as its smoke test).
        let r = healthy_torus(16, 16, true).verdict().expect_acyclic();
        let vc0_floor = 256 * 4 * 5;
        assert!(r.channels >= vc0_floor, "channels = {}", r.channels);
    }

    #[test]
    fn sampled_indices_are_deterministic_unique_and_in_range() {
        let a = sample_indices(100, 16, SAMPLE_SEED);
        let b = sample_indices(100, 16, SAMPLE_SEED);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        let set: BTreeSet<usize> = a.iter().copied().collect();
        assert_eq!(set.len(), 16, "no duplicates");
        assert!(a.iter().all(|&i| i < 100));
        // A different seed draws a different sample (overwhelmingly).
        let c = sample_indices(100, 16, SAMPLE_SEED ^ 1);
        assert_ne!(a, c);
        // Oversampling clamps to the pool.
        assert_eq!(sample_indices(5, 16, SAMPLE_SEED).len(), 5);
    }

    #[test]
    fn sampled_single_cut_sweep_agrees_with_the_exhaustive_sweep() {
        // Sampling the entire pool must reproduce the exhaustive result.
        let all = sweep_single_cuts(4, 4).expect("acyclic");
        let sampled = sweep_sampled_single_cuts(4, 4, 32, SAMPLE_SEED).expect("acyclic");
        assert_eq!(all, sampled);
        // A strict subsample stays acyclic and within the exhaustive maxima.
        let sub = sweep_sampled_single_cuts(4, 4, 8, SAMPLE_SEED).expect("acyclic");
        assert_eq!(sub.configs, 8);
        assert!(sub.max_channels <= all.max_channels);
        assert!(sub.max_edges <= all.max_edges);
    }

    #[test]
    fn sampled_double_cuts_cover_distinct_pairs_on_the_8x8_torus() {
        let s = sweep_sampled_double_cuts(8, 8, 12, SAMPLE_SEED).expect("acyclic");
        assert_eq!(s.configs + s.disconnected, 12);
        assert!(s.max_channels > 0);
    }

    #[test]
    fn double_cut_pair_unranking_is_a_bijection() {
        // Sampling every pair must agree with the exhaustive double sweep.
        let all = sweep_double_cuts(3, 3).expect("acyclic");
        let pairs = 18 * 17 / 2;
        let sampled = sweep_sampled_double_cuts(3, 3, pairs, SAMPLE_SEED).expect("acyclic");
        assert_eq!(all, sampled);
    }
}
