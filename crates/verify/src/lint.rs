//! Determinism lint: scan workspace sources for reproducibility hazards.
//!
//! The whole repository's value rests on bit-identical replay — fault
//! campaigns, figure sweeps, and the committed `results/*.json` artifacts
//! all assume that the same seed produces the same bytes. This lint walks
//! every non-test source line in the workspace and flags the constructs
//! that silently break that:
//!
//! * **hash-container** — hash-ordered maps/sets: iteration order varies
//!   per process (the hasher is randomly seeded), so any simulation state
//!   kept in one replays differently. Use ordered containers.
//! * **wall-clock** — reads of host time: anything derived from it differs
//!   per run. Simulation time is [`SimTime`]; host time is only legitimate
//!   in self-timing harness code.
//! * **ambient-rng** — OS-entropy randomness: unseedable, so unreplayable.
//!   All stochastic choices must flow from an explicit seeded generator.
//! * **truncating-time-cast** — narrowing `as` casts applied to timing
//!   arithmetic: picosecond counts overflow `u32` after ~4 ms of simulated
//!   time and `as` wraps silently.
//! * **raw-thread-spawn** — threads spawned outside the `kernel::par`
//!   substrate: raw spawns make scheduling order part of the result.
//!   `parallel_map` and `WorkerPool` pin result order to input order; they
//!   are the only sanctioned way to go wide.
//! * **shared-mutable-state** — `Mutex`/`RwLock`/atomics outside
//!   `kernel::par`: state mutated from several threads replays in
//!   scheduling order, not program order. Reporting-only gauges (which
//!   never feed back into simulation) are annotated where they live.
//!
//! A finding on an audited, genuinely-legitimate line is silenced with a
//! `// lint-allow: <rule>` comment on the same or the preceding line; the
//! lint reports allowed findings separately (and per rule) so CI can see
//! they stay rare. An allow that silences nothing — the hazard it excused
//! was removed, or the named rule never fires on its line — is itself a
//! **stale-allow** finding, so escape comments cannot outlive their
//! justification.
//! Lines inside a file's trailing `#[cfg(test)]` module (the repository's
//! test-module convention) and comment lines are skipped.
//!
//! The needle strings below are assembled by concatenation so this file
//! never contains its own hazards verbatim.
//!
//! [`SimTime`]: alphasim_kernel::SimTime

use std::fs;
use std::path::{Path, PathBuf};

/// One lint rule: a name, the substrings that trigger it, an optional
/// context requirement, an exempt-path list, and remediation advice.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Rule name, as used in `lint-allow:` comments.
    pub name: &'static str,
    /// A line matches when it contains any of these.
    needles: Vec<String>,
    /// If set, a needle match only counts when the line also contains one
    /// of these (used to scope cast checks to timing arithmetic).
    context: Option<Vec<String>>,
    /// Path substrings this rule does not apply to — the one module that
    /// legitimately owns the hazardous construct (e.g. the parallelism
    /// substrate for thread spawns).
    exempt_paths: Vec<&'static str>,
    /// What to do instead.
    pub advice: &'static str,
}

impl Rule {
    fn matches(&self, line: &str) -> bool {
        self.needles.iter().any(|n| line.contains(n.as_str()))
            && self
                .context
                .as_ref()
                .is_none_or(|ctx| ctx.iter().any(|c| line.contains(c.as_str())))
    }

    fn applies_to(&self, file: &Path) -> bool {
        let file = file.to_string_lossy();
        !self.exempt_paths.iter().any(|p| file.contains(p))
    }
}

/// The rule set. Needles are concatenated at runtime so this source file
/// cannot trip its own scan.
pub fn rules() -> Vec<Rule> {
    let join = |parts: &[&str]| parts.concat();
    vec![
        Rule {
            name: "hash-container",
            needles: vec![join(&["Hash", "Map"]), join(&["Hash", "Set"])],
            context: None,
            exempt_paths: vec![],
            advice: "hash-ordered containers iterate in a per-process random order; \
                     keep simulation state in ordered containers (BTreeMap/BTreeSet)",
        },
        Rule {
            name: "wall-clock",
            needles: vec![join(&["Instant", "::now"]), join(&["System", "Time"])],
            context: None,
            exempt_paths: vec![],
            advice: "host time differs per run; use SimTime for model time, and \
                     annotate genuine self-timing harness code with lint-allow",
        },
        Rule {
            name: "ambient-rng",
            needles: vec![
                join(&["thread", "_rng"]),
                join(&["from_", "entropy"]),
                join(&["rand", "::random"]),
                join(&["get", "random"]),
            ],
            context: None,
            exempt_paths: vec![],
            advice: "OS-entropy randomness is unreplayable; derive every random \
                     choice from an explicitly seeded generator",
        },
        Rule {
            name: "truncating-time-cast",
            needles: vec![
                join(&[" as", " u8"]),
                join(&[" as", " u16"]),
                join(&[" as", " u32"]),
                join(&[" as", " i32"]),
            ],
            context: Some(vec![
                join(&["Sim", "Time"]),
                join(&["Sim", "Duration"]),
                join(&["_", "ps"]),
                join(&["ps", "()"]),
            ]),
            exempt_paths: vec![],
            advice: "narrowing casts on picosecond arithmetic wrap silently after \
                     milliseconds of simulated time; stay in u64/u128 or use \
                     checked conversions",
        },
        Rule {
            name: "raw-thread-spawn",
            needles: vec![join(&["thread::", "spawn"]), join(&["scope.", "spawn"])],
            context: None,
            // The parallelism substrate is the one module allowed to spawn:
            // its pool and ordered map are what everyone else must go
            // through.
            exempt_paths: vec!["crates/sim/src/par.rs"],
            advice: "raw thread spawns make scheduling part of the result; route \
                     parallel work through kernel::par (parallel_map or \
                     WorkerPool), which pin result order to input order",
        },
        Rule {
            name: "shared-mutable-state",
            needles: vec![
                join(&["Mutex", "<"]),
                join(&["Mutex", "::"]),
                join(&["RwLock", "<"]),
                join(&["RwLock", "::"]),
                join(&["Atomic", "U"]),
                join(&["Atomic", "I"]),
                join(&["Atomic", "Bool"]),
            ],
            context: None,
            exempt_paths: vec!["crates/sim/src/par.rs"],
            advice: "cross-thread mutable state makes results depend on scheduling; \
                     keep state owned by one worker (kernel::par moves items, never \
                     shares them) and annotate reporting-only gauges with lint-allow",
        },
    ]
}

/// One hazard found in a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File, relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Name of the violated rule.
    pub rule: &'static str,
    /// The offending line, trimmed.
    pub excerpt: String,
}

/// Everything a scan produced.
#[derive(Debug, Clone, Default)]
pub struct ScanOutcome {
    /// Unexplained hazards — these fail CI.
    pub findings: Vec<Finding>,
    /// Hazards silenced by a `lint-allow` comment.
    pub allowed: usize,
    /// The silenced hazards broken down by rule name — committed to
    /// `results/verify.json` so an allow added anywhere shows up in review.
    pub allowed_by_rule: std::collections::BTreeMap<String, usize>,
    /// Source files scanned.
    pub files: usize,
}

const ALLOW_MARKER: &str = "lint-allow:";

/// The rule name an allow comment on `line` names, if any. Doc prose that
/// mentions the marker without a concrete rule (`lint-allow: <rule>`)
/// parses to no name and is ignored.
fn allow_rule_on(line: &str) -> Option<&str> {
    let at = line.find(ALLOW_MARKER)?;
    let rest = line[at + ALLOW_MARKER.len()..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_alphanumeric() && c != '-' && c != '_')
        .unwrap_or(rest.len());
    (end > 0).then(|| &rest[..end])
}

/// Scan one file's source text. `file` is the path recorded in findings.
pub fn scan_source(file: &Path, src: &str, rules: &[Rule]) -> ScanOutcome {
    let mut out = ScanOutcome {
        files: 1,
        ..ScanOutcome::default()
    };
    // Allow comments seen so far: (line index, named rule, used?). An
    // allow that silences nothing is itself a finding — stale escapes
    // otherwise outlive the hazard they excused and rot silently.
    let mut allows: Vec<(usize, String, bool)> = Vec::new();
    let mut prev_line = "";
    let mut prev_idx = 0usize;
    for (i, line) in src.lines().enumerate() {
        let trimmed = line.trim_start();
        // Repository convention: the test module is the tail of the file.
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if let Some(rule) = allow_rule_on(line) {
            allows.push((i, rule.to_string(), false));
        }
        if trimmed.starts_with("//") {
            prev_line = line;
            prev_idx = i;
            continue;
        }
        for rule in rules {
            if !rule.applies_to(file) || !rule.matches(line) {
                continue;
            }
            let allow = format!("{} {}", ALLOW_MARKER, rule.name);
            let silenced_at = if line.contains(&allow) {
                Some(i)
            } else if prev_line.contains(&allow) {
                Some(prev_idx)
            } else {
                None
            };
            if let Some(at) = silenced_at {
                out.allowed += 1;
                *out.allowed_by_rule
                    .entry(rule.name.to_string())
                    .or_default() += 1;
                for a in &mut allows {
                    if a.0 == at && a.1 == rule.name {
                        a.2 = true;
                    }
                }
            } else {
                out.findings.push(Finding {
                    file: file.to_path_buf(),
                    line: i + 1,
                    rule: rule.name,
                    excerpt: trimmed.trim_end().to_string(),
                });
            }
        }
        prev_line = line;
        prev_idx = i;
    }
    for (i, rule, used) in allows {
        if !used {
            out.findings.push(Finding {
                file: file.to_path_buf(),
                line: i + 1,
                rule: "stale-allow",
                excerpt: format!(
                    "`{ALLOW_MARKER} {rule}` silences nothing on this or the next \
                     line; remove the comment"
                ),
            });
        }
    }
    out.findings
        .sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

fn rust_sources_under(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort(); // deterministic scan order
    for path in entries {
        if path.is_dir() {
            rust_sources_under(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan every workspace source directory under `root`: the root crate's
/// `src/` and each `crates/*/src/`. Vendored `third_party/` code and
/// `tests/`, `benches/`, `examples/` trees are exempt — they are not
/// simulation state.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn scan_workspace(root: &Path) -> std::io::Result<ScanOutcome> {
    let rules = rules();
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        rust_sources_under(&root_src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path().join("src"))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for src_dir in members {
            rust_sources_under(&src_dir, &mut files)?;
        }
    }
    let mut total = ScanOutcome::default();
    for path in files {
        let src = fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let one = scan_source(rel, &src, &rules);
        total.findings.extend(one.findings);
        total.allowed += one.allowed;
        for (rule, n) in one.allowed_by_rule {
            *total.allowed_by_rule.entry(rule).or_default() += n;
        }
        total.files += 1;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> ScanOutcome {
        scan_source(Path::new("x.rs"), src, &rules())
    }

    #[test]
    fn detects_hash_containers_and_names_the_rule() {
        let out = scan("    let m: HashMap<u64, u64> = HashMap::new();\n");
        assert_eq!(out.findings.len(), 1, "one finding per line per rule");
        assert_eq!(out.findings[0].rule, "hash-container");
        assert_eq!(out.findings[0].line, 1);
    }

    #[test]
    fn allow_comment_on_same_or_previous_line_silences() {
        let same = scan("let t = Instant::now(); // lint-allow: wall-clock\n");
        assert!(same.findings.is_empty());
        assert_eq!(same.allowed, 1);
        let prev = scan("// lint-allow: wall-clock\nlet t = Instant::now();\n");
        assert!(prev.findings.is_empty());
        assert_eq!(prev.allowed, 1);
        // An allow naming the wrong rule silences nothing: the hazard is
        // still reported, and the allow itself is stale.
        let wrong = scan("let t = Instant::now(); // lint-allow: ambient-rng\n");
        assert_eq!(wrong.findings.len(), 2, "{:?}", wrong.findings);
        assert!(wrong.findings.iter().any(|f| f.rule == "wall-clock"));
        assert!(wrong.findings.iter().any(|f| f.rule == "stale-allow"));
    }

    #[test]
    fn test_tail_and_comments_are_skipped() {
        let src = "// a HashMap in a comment is fine\nfn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        let out = scan(src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn a_stale_allow_is_itself_a_finding() {
        // The hazard the allow excused is gone: the comment must go too.
        let gone = scan("// lint-allow: wall-clock\nlet t = sim.now();\n");
        assert_eq!(gone.findings.len(), 1, "{:?}", gone.findings);
        assert_eq!(gone.findings[0].rule, "stale-allow");
        assert_eq!(gone.findings[0].line, 1);
        assert!(gone.findings[0].excerpt.contains("wall-clock"));
        // A misspelled rule name can never silence anything.
        let typo = scan("let t = Instant::now(); // lint-allow: wall-clok\n");
        assert_eq!(typo.findings.len(), 2, "{:?}", typo.findings);
        assert!(typo.findings.iter().any(|f| f.rule == "wall-clock"));
        assert!(typo.findings.iter().any(|f| f.rule == "stale-allow"));
        // A live allow is not stale.
        let live = scan("let t = Instant::now(); // lint-allow: wall-clock\n");
        assert!(live.findings.is_empty(), "{:?}", live.findings);
        // Doc prose naming the marker without a rule is ignored.
        let prose = scan("fn f() {} // silence with `lint-allow: <rule>`\n");
        assert!(prose.findings.is_empty(), "{:?}", prose.findings);
    }

    #[test]
    fn allowed_findings_are_counted_per_rule() {
        let out = scan(
            "let t = Instant::now(); // lint-allow: wall-clock\n\
             let u = Instant::now(); // lint-allow: wall-clock\n\
             static N: AtomicU64 = AtomicU64::new(0); // lint-allow: shared-mutable-state\n",
        );
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.allowed, 3);
        assert_eq!(out.allowed_by_rule.get("wall-clock"), Some(&2));
        assert_eq!(out.allowed_by_rule.get("shared-mutable-state"), Some(&1));
    }

    #[test]
    fn truncating_cast_needs_timing_context() {
        let plain = scan("let x = n as u32;\n");
        assert!(plain.findings.is_empty(), "no timing context, no finding");
        let timed = scan("let x = now.as_ps() as u32;\n");
        assert_eq!(timed.findings.len(), 1);
        assert_eq!(timed.findings[0].rule, "truncating-time-cast");
    }

    #[test]
    fn ambient_rng_is_flagged() {
        let out = scan("let mut rng = rand::thread_rng();\n");
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "ambient-rng");
    }

    #[test]
    fn raw_spawn_and_shared_state_are_flagged_outside_the_par_module() {
        let spawn = scan("let h = std::thread::spawn(move || work());\n");
        assert_eq!(spawn.findings.len(), 1);
        assert_eq!(spawn.findings[0].rule, "raw-thread-spawn");
        let shared = scan("static COUNT: AtomicU64 = AtomicU64::new(0);\n");
        assert_eq!(shared.findings.len(), 1);
        assert_eq!(shared.findings[0].rule, "shared-mutable-state");
        let locked = scan("let m: Mutex<Vec<u64>> = Mutex::new(Vec::new());\n");
        assert_eq!(locked.findings.len(), 1);
        assert_eq!(locked.findings[0].rule, "shared-mutable-state");
    }

    #[test]
    fn par_module_is_exempt_from_parallelism_rules() {
        let src = "let h = std::thread::spawn(f);\nlet m = Mutex::new(0);\n";
        let inside = scan_source(Path::new("crates/sim/src/par.rs"), src, &rules());
        assert!(inside.findings.is_empty(), "{:?}", inside.findings);
        let outside = scan_source(Path::new("crates/net/src/sim.rs"), src, &rules());
        assert_eq!(outside.findings.len(), 2, "exemption is par.rs-only");
    }

    /// The real gate: the workspace as shipped has zero unexplained
    /// findings (the CI lint job enforces the same with `-D` semantics).
    #[test]
    fn workspace_is_clean() {
        let out = scan_workspace(&crate::workspace_root()).expect("workspace scans");
        assert!(out.files > 30, "scanned only {} files", out.files);
        let rendered: Vec<String> = out
            .findings
            .iter()
            .map(|f| format!("{}:{} [{}] {}", f.file.display(), f.line, f.rule, f.excerpt))
            .collect();
        assert!(rendered.is_empty(), "{}", rendered.join("\n"));
    }
}
