//! Property tests for the model-checker reductions.
//!
//! Symmetry and partial-order reduction are only worth having if they are
//! *sound*: the reduced search must reach the same verdict as the plain
//! one on every configuration, and the symmetry quotient must contain
//! exactly one representative per orbit of the unreduced state space.
//! These properties are argued in `verify::protocol` (the invariants are
//! CPU-permutation-invariant; the ample singleton satisfies C1–C3); the
//! tests here check the argument against the implementation across
//! randomly drawn configurations — healthy, fault-extended, and every
//! seeded mutation.

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use std::collections::BTreeSet;

use proptest::prelude::*;
use verify::mc::{check, check_reduced, reachable, ReducibleModel, Reduction, Verdict};
use verify::protocol::{Mutation, ProtocolModel};

/// Generous for the largest drawn config (3 CPUs, 2 retries, faults:
/// 16k states plain).
const BOUND: usize = 200_000;

fn pass_counts<M: verify::mc::Model>(v: Verdict<M>) -> Result<verify::mc::Exploration, String> {
    match v {
        Verdict::Pass(e) => Ok(e),
        Verdict::Violated(cex) => Err(format!(
            "unexpected violation of `{}` at depth {}",
            cex.invariant,
            cex.steps.len()
        )),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On clean configurations the reductions change only the cost of the
    /// search, never its outcome: all three verdicts pass, symmetry
    /// preserves the exploration depth (minimal counterexamples stay
    /// minimal), and the symmetry-reduced search visits exactly one state
    /// per orbit of the plain reachable set.
    #[test]
    fn reductions_are_sound_on_clean_configs(
        cpus in 2usize..=3,
        max_retries in 1u8..=2,
        faults in any::<bool>(),
    ) {
        let model = if faults {
            ProtocolModel::recovery(cpus, max_retries)
        } else {
            ProtocolModel::new(cpus, max_retries)
        };
        let plain = pass_counts(check(&model, BOUND)).unwrap();
        let sym = pass_counts(check_reduced(&model, BOUND, Reduction::SYMMETRY)).unwrap();
        let full = pass_counts(check_reduced(&model, BOUND, Reduction::FULL)).unwrap();

        prop_assert!(sym.states <= plain.states);
        prop_assert!(full.states <= sym.states);
        prop_assert_eq!(sym.depth, plain.depth);

        // The quotient is exact: canonicalizing every plain-reachable
        // state yields precisely the states the reduced search visited.
        let states = reachable(&model, BOUND).unwrap();
        prop_assert_eq!(states.len(), plain.states);
        let orbits: BTreeSet<_> = states.iter().map(|s| model.canonical(s)).collect();
        prop_assert_eq!(sym.states, orbits.len());

        // Canonicalization is a projection: applying it twice is applying
        // it once, and a canonical state is its own representative.
        for s in states.iter().step_by(7) {
            let c = model.canonical(s);
            prop_assert_eq!(model.canonical(&c), c);
        }
    }

    /// Every seeded mutation stays caught under reduction, and symmetry
    /// alone reports a counterexample of exactly the plain (minimal)
    /// length. Full reduction may lengthen the trace (POR reorders
    /// interleavings) but never loses the bug.
    #[test]
    fn reductions_preserve_mutation_verdicts(
        cpus in 2usize..=3,
        max_retries in 1u8..=2,
        mutation in prop::sample::select(vec![
            Mutation::SEEDED[0],
            Mutation::SEEDED[1],
            Mutation::SEEDED[2],
            Mutation::RECOVERY_SEEDED[0],
            Mutation::RECOVERY_SEEDED[1],
        ]),
    ) {
        let model = ProtocolModel::recovery_mutated(cpus, max_retries, mutation);
        let Verdict::Violated(plain) = check(&model, BOUND) else {
            return Err(TestCaseError::Fail(format!("{mutation:?}: plain search missed it")));
        };
        let Verdict::Violated(sym) = check_reduced(&model, BOUND, Reduction::SYMMETRY) else {
            return Err(TestCaseError::Fail(format!("{mutation:?}: symmetry lost it")));
        };
        let Verdict::Violated(full) = check_reduced(&model, BOUND, Reduction::FULL) else {
            return Err(TestCaseError::Fail(format!("{mutation:?}: full reduction lost it")));
        };
        prop_assert_eq!(sym.steps.len(), plain.steps.len());
        prop_assert!(full.steps.len() >= plain.steps.len());
    }
}
