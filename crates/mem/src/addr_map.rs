//! The machine-wide physical address map: which CPU's memory a line lives
//! in, and which of that CPU's two controllers serves it — including the
//! paper's striping mode (§6).

use alphasim_cache::Addr;
use serde::{Deserialize, Serialize};

/// Where a physical line lives: the home CPU and the Zbox within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemTarget {
    /// Home CPU index.
    pub cpu: usize,
    /// Controller index within the CPU (0 or 1).
    pub zbox: usize,
}

/// How consecutive cache lines map onto controllers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Interleave {
    /// Each CPU owns a contiguous region; within it, consecutive lines
    /// alternate between its two controllers. The default GS1280 mode.
    PerCpu,
    /// Memory striping (§6): consecutive cache lines rotate across the two
    /// CPUs of a module pair — CPU0/controller0, CPU0/controller1,
    /// CPU1/controller0, CPU1/controller1 — spreading hot-spot traffic over
    /// two CPUs at the price of extra traffic on the pair's module link.
    StripedPairs,
}

/// The physical address map of a machine: `cpus` nodes, each owning
/// `bytes_per_cpu` of memory.
///
/// # Examples
///
/// ```
/// use alphasim_mem::{AddressMap, Interleave};
/// use alphasim_cache::Addr;
///
/// let map = AddressMap::new(16, 1 << 30, Interleave::PerCpu);
/// let t = map.target_of(Addr::new(0));
/// assert_eq!((t.cpu, t.zbox), (0, 0));
/// let t = map.target_of(Addr::new(1 << 30));
/// assert_eq!(t.cpu, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMap {
    cpus: usize,
    bytes_per_cpu: u64,
    interleave: Interleave,
    line_bytes: u64,
}

impl AddressMap {
    /// A map over `cpus` nodes of `bytes_per_cpu` each.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero, if `bytes_per_cpu` is not a multiple of the
    /// 64-byte line, or if striping is requested with an odd CPU count.
    pub fn new(cpus: usize, bytes_per_cpu: u64, interleave: Interleave) -> Self {
        assert!(cpus > 0, "need at least one CPU");
        assert!(
            bytes_per_cpu.is_multiple_of(64) && bytes_per_cpu > 0,
            "per-CPU memory must be a positive multiple of 64"
        );
        if interleave == Interleave::StripedPairs {
            assert!(
                cpus.is_multiple_of(2),
                "striping pairs CPUs; need an even count"
            );
        }
        AddressMap {
            cpus,
            bytes_per_cpu,
            interleave,
            line_bytes: 64,
        }
    }

    /// Number of CPUs.
    pub fn cpus(&self) -> usize {
        self.cpus
    }

    /// Memory owned by each CPU, in bytes.
    pub fn bytes_per_cpu(&self) -> u64 {
        self.bytes_per_cpu
    }

    /// Total memory in the machine.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_cpu * self.cpus as u64
    }

    /// The interleave mode.
    pub fn interleave(&self) -> Interleave {
        self.interleave
    }

    /// The home of `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is beyond the machine's memory.
    pub fn target_of(&self, addr: Addr) -> MemTarget {
        assert!(addr.get() < self.total_bytes(), "address beyond memory");
        let region = (addr.get() / self.bytes_per_cpu) as usize;
        let line_in_region = (addr.get() % self.bytes_per_cpu) / self.line_bytes;
        match self.interleave {
            Interleave::PerCpu => MemTarget {
                cpu: region,
                zbox: (line_in_region % 2) as usize,
            },
            Interleave::StripedPairs => {
                // The pair partner shares the region pair (2k, 2k+1);
                // consecutive lines rotate over the four controllers.
                let pair_base = region & !1;
                let rot = (line_in_region % 4) as usize;
                MemTarget {
                    cpu: pair_base + rot / 2,
                    zbox: rot % 2,
                }
            }
        }
    }

    /// The home CPU of `addr` (ignoring the controller).
    pub fn home_cpu(&self, addr: Addr) -> usize {
        self.target_of(addr).cpu
    }

    /// Whether `addr` is in `cpu`'s local memory.
    pub fn is_local(&self, addr: Addr, cpu: usize) -> bool {
        self.home_cpu(addr) == cpu
    }

    /// An address in the middle of `cpu`'s own region — a convenient "local
    /// buffer" for workloads. With striping the line may still land on the
    /// pair partner; that is exactly the striping tax the paper measures.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range or `offset` exceeds the region.
    pub fn local_addr(&self, cpu: usize, offset: u64) -> Addr {
        assert!(cpu < self.cpus, "CPU out of range");
        assert!(offset < self.bytes_per_cpu, "offset beyond region");
        Addr::new(cpu as u64 * self.bytes_per_cpu + offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_cpu_regions_are_contiguous() {
        let m = AddressMap::new(4, 1 << 20, Interleave::PerCpu);
        for cpu in 0..4usize {
            let base = (cpu as u64) << 20;
            assert_eq!(m.home_cpu(Addr::new(base)), cpu);
            assert_eq!(m.home_cpu(Addr::new(base + (1 << 20) - 64)), cpu);
            assert!(m.is_local(Addr::new(base), cpu));
        }
    }

    #[test]
    fn per_cpu_alternates_zboxes_by_line() {
        let m = AddressMap::new(2, 1 << 20, Interleave::PerCpu);
        assert_eq!(m.target_of(Addr::new(0)).zbox, 0);
        assert_eq!(m.target_of(Addr::new(64)).zbox, 1);
        assert_eq!(m.target_of(Addr::new(128)).zbox, 0);
        // Offsets within a line share a target.
        assert_eq!(m.target_of(Addr::new(64 + 8)), m.target_of(Addr::new(64)));
    }

    #[test]
    fn striping_rotates_through_four_controllers() {
        // The paper's order: CPU0/z0, CPU0/z1, CPU1/z0, CPU1/z1.
        let m = AddressMap::new(2, 1 << 20, Interleave::StripedPairs);
        let seq: Vec<(usize, usize)> = (0..8)
            .map(|i| {
                let t = m.target_of(Addr::new(i * 64));
                (t.cpu, t.zbox)
            })
            .collect();
        assert_eq!(
            seq,
            [
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1)
            ]
        );
    }

    #[test]
    fn striping_pairs_are_module_neighbors() {
        let m = AddressMap::new(8, 1 << 20, Interleave::StripedPairs);
        // Lines in CPU 4's region land only on CPUs 4 and 5.
        for i in 0..32u64 {
            let t = m.target_of(Addr::new(4 * (1 << 20) + i * 64));
            assert!(t.cpu == 4 || t.cpu == 5, "line {i} on cpu {}", t.cpu);
        }
        // Half of a region's lines are remote under striping.
        let remote = (0..1024u64)
            .filter(|i| m.target_of(Addr::new(i * 64)).cpu != 0)
            .count();
        assert_eq!(remote, 512);
    }

    #[test]
    fn striping_balances_all_four_controllers() {
        let m = AddressMap::new(2, 1 << 20, Interleave::StripedPairs);
        let mut counts = std::collections::HashMap::new();
        for i in 0..4096u64 {
            let t = m.target_of(Addr::new(i * 64));
            *counts.entry((t.cpu, t.zbox)).or_insert(0u64) += 1;
        }
        assert_eq!(counts.len(), 4);
        for (&k, &v) in &counts {
            assert_eq!(v, 1024, "{k:?}");
        }
    }

    #[test]
    fn local_addr_is_local_without_striping() {
        let m = AddressMap::new(16, 1 << 24, Interleave::PerCpu);
        for cpu in 0..16 {
            assert!(m.is_local(m.local_addr(cpu, 4096), cpu));
        }
    }

    #[test]
    #[should_panic(expected = "address beyond memory")]
    fn rejects_out_of_range_address() {
        let m = AddressMap::new(2, 1 << 20, Interleave::PerCpu);
        let _ = m.target_of(Addr::new(2 << 20));
    }

    #[test]
    #[should_panic(expected = "even count")]
    fn striping_needs_even_cpus() {
        let _ = AddressMap::new(3, 1 << 20, Interleave::StripedPairs);
    }
}
