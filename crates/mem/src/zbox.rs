//! The Zbox: one of the EV7's two integrated RDRAM memory controllers.

use alphasim_cache::Addr;
use alphasim_kernel::stats::UtilizationMeter;
use alphasim_kernel::{SimDuration, SimTime};
use alphasim_telemetry::{Log2Histogram, Registry};
use serde::{Deserialize, Serialize};

use crate::pages::OpenPageTable;

/// Timing and capacity parameters of one memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZboxConfig {
    /// Peak data bandwidth of this controller in GB/s.
    pub bandwidth_gbps: f64,
    /// Active RDRAM data channels.
    pub channels: u32,
    /// Whether the optional redundant channel (paper §2: "the optional 5th
    /// channel is provided as a redundant channel") is populated, so one
    /// channel failure costs no bandwidth.
    pub redundant_channel: bool,
    /// DRAM access portion of an open-page read.
    pub open_page_latency: SimDuration,
    /// DRAM access portion of a closed-page read (row activation first).
    pub closed_page_latency: SimDuration,
    /// RDRAM page size in KiB.
    pub page_kib: u64,
    /// Open-page table capacity.
    pub open_pages: usize,
}

impl ZboxConfig {
    /// One EV7 Zbox: half the chip's 12.3 GB/s peak (4 of 8 channels), half
    /// of the 2048 open pages. The open/closed DRAM latencies are fitted so
    /// the full local load-to-use lands at the paper's ~83 ns open-page and
    /// ~130 ns closed-page (Figs. 5, 13) once the system model adds the
    /// cache-miss detection and on-chip traversal overhead.
    pub fn ev7() -> Self {
        ZboxConfig {
            bandwidth_gbps: 6.15,
            channels: 4,
            redundant_channel: true,
            open_page_latency: SimDuration::from_ns(45.0),
            closed_page_latency: SimDuration::from_ns(92.0),
            page_kib: 2,
            open_pages: 1024,
        }
    }

    /// The GS320's per-QBB memory system, expressed in the same terms: four
    /// CPUs share memory banks behind the local switch with ~1.6 GB/s of
    /// per-QBB bandwidth and far slower SDRAM-era access (fitted to Fig. 4's
    /// ~315 ns local latency and Fig. 7's sub-linear 4-CPU scaling).
    pub fn gs320_qbb() -> Self {
        ZboxConfig {
            bandwidth_gbps: 1.6,
            channels: 4,
            redundant_channel: false,
            open_page_latency: SimDuration::from_ns(180.0),
            closed_page_latency: SimDuration::from_ns(230.0),
            page_kib: 8,
            open_pages: 64,
        }
    }

    /// Bandwidth after `failed` channel failures: the redundant channel
    /// absorbs the first failure for free; further failures shed
    /// proportional bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if more channels fail than exist.
    pub fn degraded_bandwidth_gbps(&self, failed: u32) -> f64 {
        assert!(
            failed <= self.channels,
            "cannot fail {failed} of {} channels",
            self.channels
        );
        let absorbed = if self.redundant_channel { 1 } else { 0 };
        let effective_failures = failed.saturating_sub(absorbed);
        self.bandwidth_gbps * f64::from(self.channels - effective_failures)
            / f64::from(self.channels)
    }

    /// The ES45's shared memory system: crossbar to SDRAM, ~4 GB/s per box,
    /// fitted to Fig. 4's ~180 ns latency and Fig. 7's 1→4 CPU bandwidth.
    pub fn es45() -> Self {
        ZboxConfig {
            bandwidth_gbps: 4.0,
            channels: 4,
            redundant_channel: false,
            open_page_latency: SimDuration::from_ns(120.0),
            closed_page_latency: SimDuration::from_ns(150.0),
            page_kib: 8,
            open_pages: 128,
        }
    }
}

/// The timing of one completed memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZboxAccess {
    /// When the controller began serving the request (>= arrival; later if
    /// it queued behind earlier requests).
    pub started: SimTime,
    /// When the critical word was available.
    pub completed: SimTime,
    /// Whether the access hit an open RDRAM page.
    pub page_hit: bool,
}

impl ZboxAccess {
    /// Queueing delay suffered before service began.
    pub fn queue_delay(&self, arrived: SimTime) -> SimDuration {
        self.started.since(arrived)
    }
}

/// One memory controller: an open-page tracker in front of a
/// bandwidth-limited server.
///
/// Requests are served in arrival order; each occupies the controller for
/// `bytes / bandwidth` and completes after the open- or closed-page DRAM
/// latency on top of its service start.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Zbox {
    config: ZboxConfig,
    pages: OpenPageTable,
    next_free: SimTime,
    meter: UtilizationMeter,
    accesses: u64,
    /// RDRAM channels failed live ([`fail_channel`](Self::fail_channel));
    /// the redundant channel absorbs the first, later failures shed
    /// bandwidth from every subsequent access.
    failed_channels: u32,
    /// Distribution of queueing delays (nanoseconds) suffered before
    /// service — the paper's Zbox-queueing contribution to load-to-use.
    queue_delay_ns: Log2Histogram,
}

impl Zbox {
    /// An idle controller.
    pub fn new(config: ZboxConfig) -> Self {
        Zbox {
            config,
            pages: OpenPageTable::new(config.page_kib, config.open_pages),
            next_free: SimTime::ZERO,
            meter: UtilizationMeter::new(),
            accesses: 0,
            failed_channels: 0,
            queue_delay_ns: Log2Histogram::new(),
        }
    }

    /// This controller's configuration.
    pub fn config(&self) -> &ZboxConfig {
        &self.config
    }

    /// Fail one RDRAM channel in place; subsequent accesses run at
    /// [`effective_bandwidth_gbps`](Self::effective_bandwidth_gbps).
    ///
    /// # Panics
    ///
    /// Panics if every channel has already failed.
    pub fn fail_channel(&mut self) {
        assert!(
            self.failed_channels < self.config.channels,
            "all {} channels already failed",
            self.config.channels
        );
        self.failed_channels += 1;
    }

    /// Repair one failed channel.
    ///
    /// # Panics
    ///
    /// Panics if no channel is failed.
    pub fn restore_channel(&mut self) {
        assert!(self.failed_channels > 0, "no failed channel to restore");
        self.failed_channels -= 1;
    }

    /// Channels currently failed.
    pub fn failed_channels(&self) -> u32 {
        self.failed_channels
    }

    /// Bandwidth the controller can deliver right now, after sparing.
    pub fn effective_bandwidth_gbps(&self) -> f64 {
        self.config.degraded_bandwidth_gbps(self.failed_channels)
    }

    /// Serve a `bytes`-sized access to `addr` arriving at `now`.
    pub fn access(&mut self, now: SimTime, addr: Addr, bytes: u64) -> ZboxAccess {
        let page = self.pages.page_of(addr.get());
        let page_hit = self.pages.touch(page);
        let dram = if page_hit {
            self.config.open_page_latency
        } else {
            self.config.closed_page_latency
        };
        let occupancy = SimDuration::transfer_time(bytes, self.effective_bandwidth_gbps());
        let started = now.max(self.next_free);
        self.next_free = started + occupancy;
        self.meter.add_busy(occupancy);
        self.meter.add_bytes(bytes);
        self.accesses += 1;
        self.queue_delay_ns
            .record(started.since(now).as_ps() / 1_000);
        ZboxAccess {
            started,
            completed: started + dram,
            page_hit,
        }
    }

    /// When the controller next becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Fraction of `[0, now]` spent transferring data.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.meter.utilization(now)
    }

    /// Cumulative busy (data-transfer) time, for interval sampling.
    pub fn busy_time(&self) -> SimDuration {
        self.meter.busy()
    }

    /// Achieved bandwidth over `[0, now]` in GB/s.
    pub fn achieved_gbps(&self, now: SimTime) -> f64 {
        self.meter.bandwidth_gbps(now)
    }

    /// Total accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Page-hit fraction so far (0 if no accesses).
    pub fn page_hit_ratio(&self) -> f64 {
        let total = self.pages.hits() + self.pages.misses();
        if total == 0 {
            0.0
        } else {
            self.pages.hits() as f64 / total as f64
        }
    }

    /// Distribution of queueing delays (in nanoseconds) suffered so far.
    pub fn queue_delay_histogram(&self) -> &Log2Histogram {
        &self.queue_delay_ns
    }

    /// Export this controller's counters into a telemetry registry under
    /// the `zbox.` namespace. Counters add and histograms merge, so calling
    /// this for every Zbox of a machine aggregates them deterministically.
    pub fn export_metrics(&self, registry: &mut Registry) {
        registry.counter_add("zbox.accesses", self.accesses);
        registry.counter_add("zbox.page_hits", self.pages.hits());
        registry.counter_add("zbox.page_misses", self.pages.misses());
        registry.counter_add("zbox.failed_channels", u64::from(self.failed_channels));
        registry
            .histogram_mut("zbox.queue_delay_ns")
            .merge(&self.queue_delay_ns);
    }

    /// Reset counters and close all pages, keeping the configuration.
    pub fn reset(&mut self) {
        *self = Zbox::new(self.config);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    #[test]
    fn open_page_is_faster_than_closed() {
        let mut z = Zbox::new(ZboxConfig::ev7());
        let miss = z.access(SimTime::ZERO, Addr::new(0), 64);
        let hit = z.access(miss.completed, Addr::new(64), 64);
        assert!(!miss.page_hit);
        assert!(hit.page_hit);
        let miss_lat = miss.completed.since(SimTime::ZERO);
        let hit_lat = hit.completed.since(miss.completed);
        assert!(hit_lat < miss_lat, "page hit must be faster");
        assert_eq!(
            miss_lat.as_ns() - hit_lat.as_ns(),
            (ZboxConfig::ev7().closed_page_latency - ZboxConfig::ev7().open_page_latency).as_ns()
        );
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut z = Zbox::new(ZboxConfig::ev7());
        let a = z.access(SimTime::ZERO, Addr::new(0), 64);
        let b = z.access(SimTime::ZERO, Addr::new(64), 64);
        assert_eq!(a.started, SimTime::ZERO);
        // 64B at 6.15 GB/s occupies ~10.4 ns.
        assert!((b.queue_delay(SimTime::ZERO).as_ns() - 10.407).abs() < 0.01);
        // b hits the page a opened, so despite queueing behind a it may
        // complete earlier; its *start* is what the queue delays.
        assert!(b.started > a.started);
        assert!(a.completed > b.started);
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut z = Zbox::new(ZboxConfig::ev7());
        z.access(SimTime::ZERO, Addr::new(0), 64);
        let later = z.access(t(1000.0), Addr::new(64), 64);
        assert_eq!(later.started, t(1000.0));
    }

    #[test]
    fn utilization_and_bandwidth_accounting() {
        let mut z = Zbox::new(ZboxConfig::ev7());
        let mut now = SimTime::ZERO;
        for i in 0..100u64 {
            let acc = z.access(now, Addr::new(i * 64), 64);
            now = acc.started + SimDuration::transfer_time(64, 6.15);
        }
        // Saturated: utilization ~1, bandwidth ~peak.
        assert!(z.utilization(now) > 0.99);
        assert!((z.achieved_gbps(now) - 6.15).abs() < 0.1);
        assert_eq!(z.accesses(), 100);
    }

    #[test]
    fn sequential_stream_mostly_page_hits() {
        let mut z = Zbox::new(ZboxConfig::ev7());
        let mut now = SimTime::ZERO;
        for i in 0..1024u64 {
            let acc = z.access(now, Addr::new(i * 64), 64);
            now = acc.completed;
        }
        // 2 KiB pages, 64 B lines: 31/32 hits.
        assert!(z.page_hit_ratio() > 0.95);
    }

    #[test]
    fn strided_stream_never_page_hits() {
        let mut z = Zbox::new(ZboxConfig::ev7());
        let stride = 16 * 1024u64;
        let mut now = SimTime::ZERO;
        let span = 1024 * stride * 4; // cycle over 4x the open-page reach
        for i in 0..4096u64 {
            let acc = z.access(now, Addr::new((i * stride) % span), 64);
            now = acc.completed;
        }
        assert!(z.page_hit_ratio() < 0.01, "{}", z.page_hit_ratio());
    }

    #[test]
    fn reset_clears_state() {
        let mut z = Zbox::new(ZboxConfig::ev7());
        z.access(SimTime::ZERO, Addr::new(0), 64);
        z.reset();
        assert_eq!(z.accesses(), 0);
        assert_eq!(z.next_free(), SimTime::ZERO);
        assert_eq!(z.queue_delay_histogram().count(), 0);
    }

    #[test]
    fn queue_delay_histogram_and_metric_export() {
        let mut z = Zbox::new(ZboxConfig::ev7());
        // First access starts immediately (0 ns queue); the second queues
        // behind it for the 64 B occupancy (~10.4 ns → log2 bucket [8, 15]).
        let a = z.access(SimTime::ZERO, Addr::new(0), 64);
        let b = z.access(SimTime::ZERO, Addr::new(64), 64);
        assert_eq!(a.queue_delay(SimTime::ZERO), SimDuration::ZERO);
        assert!(b.queue_delay(SimTime::ZERO) > SimDuration::ZERO);
        let h = z.queue_delay_histogram();
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket(0), 1, "one zero-delay access");
        let mut reg = alphasim_telemetry::Registry::new();
        z.export_metrics(&mut reg);
        assert_eq!(reg.counter("zbox.accesses"), 2);
        assert_eq!(
            reg.counter("zbox.page_hits") + reg.counter("zbox.page_misses"),
            2
        );
        let exported = reg.histogram("zbox.queue_delay_ns").expect("merged");
        assert_eq!(exported.count(), 2);
    }

    #[test]
    fn gs320_is_slower_and_narrower_than_ev7() {
        let ev7 = ZboxConfig::ev7();
        let gs320 = ZboxConfig::gs320_qbb();
        assert!(gs320.bandwidth_gbps < ev7.bandwidth_gbps / 3.0);
        assert!(gs320.open_page_latency > ev7.open_page_latency * 3);
    }
}

#[cfg(test)]
mod channel_tests {
    use super::*;

    #[test]
    fn redundant_channel_absorbs_first_failure() {
        let ev7 = ZboxConfig::ev7();
        assert_eq!(ev7.degraded_bandwidth_gbps(0), ev7.bandwidth_gbps);
        // Paper §2: the 5th channel is redundant — one failure is free.
        assert_eq!(ev7.degraded_bandwidth_gbps(1), ev7.bandwidth_gbps);
        // A second failure sheds a channel's worth.
        let two = ev7.degraded_bandwidth_gbps(2);
        assert!((two - ev7.bandwidth_gbps * 3.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn unprotected_controllers_lose_bandwidth_immediately() {
        let gs320 = ZboxConfig::gs320_qbb();
        let one = gs320.degraded_bandwidth_gbps(1);
        assert!((one - gs320.bandwidth_gbps * 3.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot fail")]
    fn rejects_impossible_failures() {
        let _ = ZboxConfig::ev7().degraded_bandwidth_gbps(9);
    }

    #[test]
    fn live_channel_failure_slows_later_accesses_only() {
        let mut z = Zbox::new(ZboxConfig::ev7());
        let healthy = z.access(SimTime::ZERO, Addr::new(0), 4096);
        let healthy_occ = z.next_free().since(healthy.started);
        // First live failure: spared by the redundant channel, no slowdown.
        z.fail_channel();
        assert_eq!(z.failed_channels(), 1);
        assert_eq!(z.effective_bandwidth_gbps(), z.config().bandwidth_gbps);
        // Second failure sheds real bandwidth: same access occupies longer.
        z.fail_channel();
        let wounded_start = z.next_free();
        let wounded = z.access(wounded_start, Addr::new(0), 4096);
        let wounded_occ = z.next_free().since(wounded.started);
        assert!(
            wounded_occ > healthy_occ,
            "degraded transfer must be slower: {healthy_occ} vs {wounded_occ}"
        );
        // Repairing both channels restores the peak.
        z.restore_channel();
        z.restore_channel();
        assert_eq!(z.effective_bandwidth_gbps(), z.config().bandwidth_gbps);
    }

    #[test]
    #[should_panic(expected = "already failed")]
    fn cannot_fail_more_channels_than_exist() {
        let mut z = Zbox::new(ZboxConfig::ev7());
        for _ in 0..5 {
            z.fail_channel();
        }
    }
}
