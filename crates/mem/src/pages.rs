//! Open-page tracking for Direct Rambus memory.

use serde::{Deserialize, Serialize};

/// A banked open-page (row-buffer) table.
///
/// The 21364 can keep "up to 2048 pages open simultaneously" (paper §2) —
/// but those pages live in *banks*: each bank holds one open row, and two
/// pages that share a bank conflict. This is why Fig. 5's latency rises
/// from ~80 ns to ~130 ns as the stride grows: unit strides keep hitting
/// the open row, while large power-of-two strides alias onto a few banks
/// and close the row on every access.
///
/// # Examples
///
/// ```
/// use alphasim_mem::OpenPageTable;
/// let mut t = OpenPageTable::new(2, 1024);
/// assert!(!t.touch(7)); // first touch opens the row
/// assert!(t.touch(7));  // subsequent touches hit
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpenPageTable {
    page_kib: u64,
    /// Open row (page id) per bank; `bank = page % banks`.
    banks: Vec<Option<u64>>,
    hits: u64,
    misses: u64,
}

impl OpenPageTable {
    /// A table of `banks` banks over `page_kib`-KiB pages.
    ///
    /// # Panics
    ///
    /// Panics if `banks` or `page_kib` is zero.
    pub fn new(page_kib: u64, banks: usize) -> Self {
        assert!(banks > 0 && page_kib > 0, "empty page table");
        OpenPageTable {
            page_kib,
            banks: vec![None; banks],
            hits: 0,
            misses: 0,
        }
    }

    /// The RDRAM page an address belongs to.
    pub fn page_of(&self, addr: u64) -> u64 {
        addr / (self.page_kib * 1024)
    }

    /// Touch a page: `true` if its bank already has this row open (page
    /// hit); otherwise the row is activated, displacing the bank's previous
    /// row.
    pub fn touch(&mut self, page: u64) -> bool {
        let bank = (page % self.banks.len() as u64) as usize;
        if self.banks[bank] == Some(page) {
            self.hits += 1;
            return true;
        }
        self.banks[bank] = Some(page);
        self.misses += 1;
        false
    }

    /// Number of currently open pages.
    pub fn open_count(&self) -> usize {
        self.banks.iter().filter(|b| b.is_some()).count()
    }

    /// Number of banks (the maximum simultaneously open pages).
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Page hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Page misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Close every page (e.g. at a workload boundary).
    pub fn close_all(&mut self) {
        self.banks.fill(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_lines_hit_open_page() {
        // 2 KiB pages hold 32 cache lines; a unit-stride stream misses once
        // per page.
        let mut t = OpenPageTable::new(2, 1024);
        let mut misses = 0;
        for line in 0..64u64 {
            let page = t.page_of(line * 64);
            if !t.touch(page) {
                misses += 1;
            }
        }
        assert_eq!(misses, 2);
        assert_eq!(t.hits(), 62);
    }

    #[test]
    fn large_power_of_two_stride_conflicts_in_banks() {
        // Stride 16 KiB = 8 pages: successive accesses alias onto a cycle
        // of banks; with more rows than the cycle covers, every access
        // conflicts once the working set exceeds the aliased banks.
        let mut t = OpenPageTable::new(2, 64);
        let mut hit = 0;
        // 512 distinct pages, stride 8 pages -> 64-bank cycle of length 8,
        // each bank sees 64 different rows.
        for i in 0..4096u64 {
            let page = (i % 512) * 8;
            if t.touch(page) {
                hit += 1;
            }
        }
        assert_eq!(hit, 0, "strided rows must keep conflicting");
    }

    #[test]
    fn bank_capacity_bounds_open_pages() {
        let mut t = OpenPageTable::new(2, 16);
        for p in 0..100 {
            t.touch(p);
        }
        assert_eq!(t.open_count(), 16);
        assert_eq!(t.bank_count(), 16);
        // The most recent row in bank (99 % 16) is open.
        assert!(t.touch(99));
        assert!(!t.touch(83)); // same bank as 99, different row
    }

    #[test]
    fn distinct_banks_do_not_interfere() {
        let mut t = OpenPageTable::new(2, 8);
        t.touch(0);
        t.touch(1);
        t.touch(2);
        assert!(t.touch(0));
        assert!(t.touch(1));
        assert!(t.touch(2));
    }

    #[test]
    fn close_all_empties() {
        let mut t = OpenPageTable::new(2, 8);
        t.touch(5);
        t.close_all();
        assert_eq!(t.open_count(), 0);
        assert!(!t.touch(5));
    }
}
