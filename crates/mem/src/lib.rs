//! The Alpha 21364's integrated RDRAM memory controllers ("Zboxes") and the
//! machine-wide physical address map, including the paper's memory-striping
//! mode (§6).
//!
//! Each EV7 carries two Zboxes driving Direct Rambus memory: 12.3 GB/s peak
//! across 8 two-byte channels at 767 MHz data rate, with up to 2048
//! simultaneously open pages (paper §2). Open-page accesses complete in
//! ~80 ns load-to-use, closed-page (large-stride) accesses in ~130 ns
//! (Fig. 5); this crate models the controller's share of those latencies,
//! page tracking, and bandwidth occupancy.
//!
//! # Examples
//!
//! ```
//! use alphasim_mem::{Zbox, ZboxConfig};
//! use alphasim_cache::Addr;
//! use alphasim_kernel::SimTime;
//!
//! let mut z = Zbox::new(ZboxConfig::ev7());
//! let first = z.access(SimTime::ZERO, Addr::new(0x4000), 64);
//! assert!(!first.page_hit); // cold page
//! let again = z.access(first.completed, Addr::new(0x4040), 64);
//! assert!(again.page_hit);  // same RDRAM page still open
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod addr_map;
mod pages;
mod zbox;

pub use addr_map::{AddressMap, Interleave, MemTarget};
pub use pages::OpenPageTable;
pub use zbox::{Zbox, ZboxAccess, ZboxConfig};
