//! Property tests for the address map and memory controller.

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use alphasim_cache::Addr;
use alphasim_kernel::SimTime;
use alphasim_mem::{AddressMap, Interleave, Zbox, ZboxConfig};
use proptest::prelude::*;

proptest! {
    /// Every address has exactly one home, stable across calls, and within
    /// the machine.
    #[test]
    fn target_is_total_and_stable(cpus2 in 1usize..16, addr in 0u64..(1<<26),
                                  striped in any::<bool>()) {
        let cpus = cpus2 * 2;
        let interleave = if striped { Interleave::StripedPairs } else { Interleave::PerCpu };
        let m = AddressMap::new(cpus, 1 << 22, interleave);
        let a = Addr::new(addr % m.total_bytes());
        let t1 = m.target_of(a);
        let t2 = m.target_of(a);
        prop_assert_eq!(t1, t2);
        prop_assert!(t1.cpu < cpus);
        prop_assert!(t1.zbox < 2);
    }

    /// All bytes of one cache line share a target (no torn lines).
    #[test]
    fn lines_are_atomic(cpus2 in 1usize..8, line in 0u64..10_000, striped in any::<bool>()) {
        let cpus = cpus2 * 2;
        let interleave = if striped { Interleave::StripedPairs } else { Interleave::PerCpu };
        let m = AddressMap::new(cpus, 1 << 22, interleave);
        let base = (line * 64) % m.total_bytes();
        let base = base - base % 64;
        let t0 = m.target_of(Addr::new(base));
        for off in [1u64, 13, 31, 63] {
            prop_assert_eq!(m.target_of(Addr::new(base + off)), t0);
        }
    }

    /// Striping keeps a line within its module pair and balances the four
    /// controllers exactly over any aligned window of 4 lines.
    #[test]
    fn striping_stays_in_pair(cpus2 in 1usize..8, group in 0u64..1000) {
        let cpus = cpus2 * 2;
        let m = AddressMap::new(cpus, 1 << 22, Interleave::StripedPairs);
        let base = (group * 256) % m.total_bytes();
        let base = base - base % 256; // 4-line aligned
        let region = base / m.bytes_per_cpu();
        let pair = (region & !1) as usize;
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..4u64 {
            let t = m.target_of(Addr::new(base + i * 64));
            prop_assert!(t.cpu == pair || t.cpu == pair + 1);
            seen.insert((t.cpu, t.zbox));
        }
        prop_assert_eq!(seen.len(), 4, "all four controllers in a 4-line window");
    }

    /// Zbox service is causal and monotone: completion after start, start
    /// no earlier than arrival, and the controller's next_free never runs
    /// backwards.
    #[test]
    fn zbox_time_is_monotone(gaps in prop::collection::vec(0u64..200_000u64, 1..100)) {
        let mut z = Zbox::new(ZboxConfig::ev7());
        let mut now = SimTime::ZERO;
        let mut last_free = SimTime::ZERO;
        for (i, &gap) in gaps.iter().enumerate() {
            now = SimTime::from_ps(now.as_ps() + gap);
            let acc = z.access(now, Addr::new((i as u64) * 4096), 64);
            prop_assert!(acc.started >= now);
            prop_assert!(acc.completed > acc.started);
            prop_assert!(z.next_free() >= last_free);
            last_free = z.next_free();
        }
        prop_assert_eq!(z.accesses(), gaps.len() as u64);
    }

    /// Utilization is always a fraction.
    #[test]
    fn zbox_utilization_bounded(n in 1usize..200) {
        let mut z = Zbox::new(ZboxConfig::ev7());
        for i in 0..n {
            z.access(SimTime::ZERO, Addr::new((i as u64) * 64), 64);
        }
        let end = z.next_free();
        let u = z.utilization(end);
        prop_assert!((0.0..=1.0).contains(&u));
    }
}
