//! Vendored, dependency-free subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the slice of proptest the workspace's property tests use: the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`]
//! macros, the [`Strategy`] trait with `prop_map` / `prop_filter`, range and
//! tuple strategies, `prop::collection::vec`, `prop::sample::select`,
//! [`any`], and [`ProptestConfig`].
//!
//! Sampling is deterministic (SplitMix64 seeded per test from the test name)
//! with no shrinking: a failing case panics with the generated input so it
//! can be reproduced by rerunning the test. Properties must hold for *all*
//! inputs, so exercising a different-but-deterministic sample set than
//! upstream proptest checks the same contracts.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// SplitMix64: small, fast, and plenty for test-input sampling.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` via 128-bit widening multiply.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value: Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`, retrying generation.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive values: {}",
            self.whence
        );
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $ty;
                }
                (lo as u64).wrapping_add(rng.below(span)) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// Build that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// An arbitrary value of `T`, as `any::<T>()`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy over a type's full domain.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! arbitrary_impl {
    ($($ty:ty => $gen:expr),* $(,)?) => {$(
        impl Strategy for AnyStrategy<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let f: fn(&mut TestRng) -> $ty = $gen;
                f(rng)
            }
        }

        impl Arbitrary for $ty {
            type Strategy = AnyStrategy<$ty>;

            fn arbitrary() -> Self::Strategy {
                AnyStrategy { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

arbitrary_impl! {
    bool => |rng| rng.next_u64() & 1 == 1,
    u8 => |rng| rng.next_u64() as u8,
    u16 => |rng| rng.next_u64() as u16,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
    f64 => |rng| rng.unit_f64(),
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::sample::select`).
pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::fmt::Debug;
        use std::ops::Range;

        /// A `Vec` whose length is drawn from `len`, elements from `element`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// Output of [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: Debug,
        {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.clone().generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod sample {
        use crate::{Strategy, TestRng};
        use std::fmt::Debug;

        /// One of the given options, uniformly.
        pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires at least one option");
            Select { options }
        }

        /// Output of [`select`].
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone + Debug> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Per-test configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream proptest's default.
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejection: skip this input.
    Reject(String),
}

/// Drive one property test: generate inputs, run the body, panic on failure.
/// Called by the [`proptest!`] expansion; not part of the public API surface.
pub fn run_proptest<S: Strategy>(
    config: &ProptestConfig,
    name: &str,
    strategy: &S,
    body: impl Fn(S::Value) -> Result<(), TestCaseError>,
) {
    // Deterministic per-test seed so failures reproduce exactly.
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
    });
    let mut rng = TestRng::new(seed);
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(20).max(1000);
    while accepted < config.cases && attempts < max_attempts {
        attempts += 1;
        let input = strategy.generate(&mut rng);
        let desc = format!("{input:?}");
        match body(input) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case failed: {msg}\n  test: {name}\n  input: {desc}");
            }
        }
    }
    assert!(
        accepted > 0,
        "proptest {name}: every generated input was rejected by prop_assume!"
    );
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Property-test entry point: wraps `fn name(pat in strategy, ...) { body }`
/// items into `#[test]` functions driven by [`run_proptest`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategy = ($($strat,)+);
                $crate::run_proptest(&config, stringify!($name), &strategy, |($($pat,)+)| {
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_are_bounded((a, b) in (0u32..5, 1u32..=8), x in 0u64..1000) {
            prop_assert!(a < 5);
            prop_assert!((1..=8).contains(&b));
            prop_assert!(x < 1000);
        }

        #[test]
        fn vec_and_select(v in prop::collection::vec(0usize..10, 1..50),
                          pick in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            prop_assert!(v.iter().all(|&e| e < 10));
            prop_assert!(pick == 2 || pick == 4 || pick == 8);
        }

        #[test]
        fn map_filter_assume(y in (0u32..100).prop_map(|v| v * 2)
                                 .prop_filter("nonzero", |&v| v != 0),
                             flag in any::<bool>()) {
            prop_assume!(y != 4);
            prop_assert!(y.is_multiple_of(2));
            prop_assert!(usize::from(flag) <= 1);
        }
    }

    #[test]
    fn determinism_same_seed_same_values() {
        let strat = (0u64..1_000_000, -1e6f64..1e6);
        let mut r1 = super::TestRng::new(42);
        let mut r2 = super::TestRng::new(42);
        use super::Strategy;
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }
}
