//! Vendored, dependency-free subset of `serde_json`.
//!
//! Provides the slice of the API the workspace uses — [`Value`],
//! [`to_value`], [`to_string`], [`to_string_pretty`], [`from_str`], and the
//! [`json!`] macro — over the value model defined in the vendored `serde`
//! crate. Parsing stops at [`Value`]; callers that need typed data decode
//! the tree by hand (the vendored `Deserialize` is a marker trait).
//!
//! Output formatting matches upstream `serde_json` (compact and 2-space
//! pretty printers, sorted object keys, integers without a decimal point,
//! floats through Rust's shortest round-trip formatting with a `.0` suffix
//! for integral values). Byte-compatibility with upstream is pinned by the
//! committed `results/*.json` artifacts, which regenerate identically.

pub use serde::{Number, Value};

use std::fmt;

/// Serialization error. The shim's tree-building serializer is infallible,
/// so this exists only to keep `Result`-shaped call sites source-compatible.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Convert any serializable value into a JSON [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Compact JSON text (no whitespace).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Pretty JSON text: 2-space indent, matching upstream `serde_json`.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some("  "), 0);
    Ok(out)
}

/// Parse JSON text into a [`Value`] tree.
///
/// A strict recursive-descent parser over the standard grammar: objects,
/// arrays, strings with `\uXXXX` escapes, numbers (integers stay integral,
/// as [`Number`] distinguishes them), booleans, and `null`. Trailing
/// garbage, trailing commas, and unpaired surrogates are errors.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), Error> {
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!("expected {:?} at byte {}", ch as char, *pos)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(bytes, pos, b'{')?;
    let mut map = std::collections::BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(Error(format!("expected ',' or '}}' at byte {}", *pos))),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(Error(format!("expected ',' or ']' at byte {}", *pos))),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // High surrogate: a \uXXXX low surrogate must follow.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err(Error("unpaired surrogate".into()));
                            }
                            let lo = parse_hex4(bytes, *pos + 3)?;
                            *pos += 6;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error("unpaired surrogate".into()));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error("invalid \\u escape".into()))?,
                        );
                    }
                    _ => return Err(Error(format!("invalid escape at byte {}", *pos))),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                return Err(Error(format!("unescaped control byte at {}", *pos)));
            }
            Some(_) => {
                // Copy one UTF-8 scalar (the input is a &str, so boundaries
                // are sound).
                let start = *pos;
                let mut end = start + 1;
                while end < bytes.len() && bytes[end] & 0xC0 == 0x80 {
                    end += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[start..end])
                        .map_err(|_| Error("invalid UTF-8".into()))?,
                );
                *pos = end;
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, Error> {
    if at + 4 > bytes.len() {
        return Err(Error("truncated \\u escape".into()));
    }
    let text =
        std::str::from_utf8(&bytes[at..at + 4]).map_err(|_| Error("invalid \\u escape".into()))?;
    u32::from_str_radix(text, 16).map_err(|_| Error("invalid \\u escape".into()))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error("invalid number".into()))?;
    if text.is_empty() || text == "-" {
        return Err(Error(format!("invalid number at byte {start}")));
    }
    let integral = !text.contains(['.', 'e', 'E']);
    if integral {
        if let Some(stripped) = text.strip_prefix('-') {
            if let Ok(n) = stripped.parse::<i64>().map(|n| -n) {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        } else if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::Number(Number::PosInt(n)));
        }
    }
    text.parse::<f64>()
        .map(|x| Value::Number(Number::Float(x)))
        .map_err(|_| Error(format!("invalid number {text:?}")))
}

/// Build a [`Value`] from a JSON-like literal. Supports the object, array,
/// and expression forms the workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = ::std::collections::BTreeMap::new();
        $(
            map.insert(
                ::std::string::String::from($key),
                $crate::to_value(&$val).expect("json! value serializes"),
            );
        )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    use std::fmt::Write;
    match n {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(x) => {
            // Mirror ryu (upstream's float formatter): integral doubles get a
            // trailing `.0`; everything else uses Rust's shortest
            // round-trip decimal form, identical to ryu's digits in the
            // plain-decimal range the workspace's data occupies.
            if *x == x.trunc() && x.abs() < 1e16 {
                let _ = write!(out, "{x:.1}");
            } else {
                let _ = write!(out, "{x}");
            }
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_upstream_shape() {
        let v = json!({ "id": "fig", "vals": [1.0_f64, 4096.0_f64], "n": 3_u64 });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(
            s,
            "{\n  \"id\": \"fig\",\n  \"n\": 3,\n  \"vals\": [\n    1.0,\n    4096.0\n  ]\n}"
        );
    }

    #[test]
    fn float_formatting() {
        let cases: [(f64, &str); 5] = [
            (0.0, "0.0"),
            (4096.0, "4096.0"),
            (0.002809437266225623, "0.002809437266225623"),
            (83.0, "83.0"),
            (-1.5, "-1.5"),
        ];
        for (x, want) in cases {
            let s = to_string(&x).unwrap();
            assert_eq!(s, want, "formatting {x}");
        }
    }

    #[test]
    fn parser_round_trips_what_the_printer_emits() {
        let site = json!({ "a": 0_u64, "b": 1_u64 });
        let kind = json!({ "LinkDown": site });
        let event = json!({ "at": 1000_u64, "kind": kind });
        let v = json!({
            "name": "chaos-seed7",
            "count": 18446744073709551615_u64,
            "neg": -42_i64,
            "pi": 3.25_f64,
            "flag": true,
            "missing": Value::Null,
            "plan": json!([event]),
            "empty": Vec::<u64>::new()
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&text).unwrap(), v, "parsing {text}");
        }
    }

    #[test]
    fn parser_handles_escapes_and_rejects_garbage() {
        let v = from_str("\"a\\n\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("a\nA😀"));
        assert!(from_str("{\"a\":1,}").is_err(), "trailing comma");
        assert!(from_str("[1, 2] tail").is_err(), "trailing garbage");
        assert!(from_str("\"open").is_err(), "unterminated string");
        assert!(from_str("01x").is_err(), "malformed number tail");
        assert!(from_str("\"\\ud800\"").is_err(), "unpaired surrogate");
        assert_eq!(from_str(" 42 ").unwrap().as_u64(), Some(42));
        assert_eq!(from_str("-7").unwrap().as_f64(), Some(-7.0));
    }

    #[test]
    fn compact_and_empty_containers() {
        let v = json!({ "a": Vec::<u64>::new() });
        assert_eq!(to_string(&v).unwrap(), "{\"a\":[]}");
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": []\n}");
        assert!(v.is_object());
    }
}
