//! Vendored, dependency-free subset of `serde_json`.
//!
//! Provides the slice of the API the workspace uses — [`Value`],
//! [`to_value`], [`to_string`], [`to_string_pretty`], and the [`json!`]
//! macro — over the value model defined in the vendored `serde` crate.
//!
//! Output formatting matches upstream `serde_json` (compact and 2-space
//! pretty printers, sorted object keys, integers without a decimal point,
//! floats through Rust's shortest round-trip formatting with a `.0` suffix
//! for integral values). Byte-compatibility with upstream is pinned by the
//! committed `results/*.json` artifacts, which regenerate identically.

pub use serde::{Number, Value};

use std::fmt;

/// Serialization error. The shim's tree-building serializer is infallible,
/// so this exists only to keep `Result`-shaped call sites source-compatible.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Convert any serializable value into a JSON [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Compact JSON text (no whitespace).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Pretty JSON text: 2-space indent, matching upstream `serde_json`.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some("  "), 0);
    Ok(out)
}

/// Build a [`Value`] from a JSON-like literal. Supports the object, array,
/// and expression forms the workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = ::std::collections::BTreeMap::new();
        $(
            map.insert(
                ::std::string::String::from($key),
                $crate::to_value(&$val).expect("json! value serializes"),
            );
        )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    use std::fmt::Write;
    match n {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(x) => {
            // Mirror ryu (upstream's float formatter): integral doubles get a
            // trailing `.0`; everything else uses Rust's shortest
            // round-trip decimal form, identical to ryu's digits in the
            // plain-decimal range the workspace's data occupies.
            if *x == x.trunc() && x.abs() < 1e16 {
                let _ = write!(out, "{x:.1}");
            } else {
                let _ = write!(out, "{x}");
            }
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_upstream_shape() {
        let v = json!({ "id": "fig", "vals": [1.0_f64, 4096.0_f64], "n": 3_u64 });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(
            s,
            "{\n  \"id\": \"fig\",\n  \"n\": 3,\n  \"vals\": [\n    1.0,\n    4096.0\n  ]\n}"
        );
    }

    #[test]
    fn float_formatting() {
        let cases: [(f64, &str); 5] = [
            (0.0, "0.0"),
            (4096.0, "4096.0"),
            (0.002809437266225623, "0.002809437266225623"),
            (83.0, "83.0"),
            (-1.5, "-1.5"),
        ];
        for (x, want) in cases {
            let s = to_string(&x).unwrap();
            assert_eq!(s, want, "formatting {x}");
        }
    }

    #[test]
    fn compact_and_empty_containers() {
        let v = json!({ "a": Vec::<u64>::new() });
        assert_eq!(to_string(&v).unwrap(), "{\"a\":[]}");
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": []\n}");
        assert!(v.is_object());
    }
}
