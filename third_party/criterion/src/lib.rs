//! Vendored, dependency-free subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the benchmark-harness surface the workspace's benches use:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::benchmark_group`],
//! `sample_size`, `throughput`, `bench_function`, and [`Bencher::iter`].
//!
//! Measurement is deliberately simple: each benchmark warms up once, then
//! takes `sample_size` wall-clock samples of a batch sized to run for at
//! least a few milliseconds, and reports the best sample's per-iteration
//! time (best-of-N is robust against scheduler noise on shared machines).
//! Results print to stdout in a stable `name ... time/iter [throughput]`
//! format.

use std::time::{Duration, Instant};

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let mut b = Bencher {
            best_per_iter: Duration::MAX,
            samples: self.sample_size,
        };
        f(&mut b);
        let per_iter = b.best_per_iter;
        let label = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut line = format!("{label:<45} {}", format_duration(per_iter));
        if let Some(t) = self.throughput {
            let secs = per_iter.as_secs_f64().max(1e-12);
            match t {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  ({:.3} Melem/s)", n as f64 / secs / 1e6));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!(
                        "  ({:.3} MiB/s)",
                        n as f64 / secs / (1 << 20) as f64
                    ));
                }
            }
        }
        println!("{line}");
    }

    /// End the group (reporting happens per-benchmark; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; measures the routine under test.
pub struct Bencher {
    best_per_iter: Duration,
    samples: usize,
}

impl Bencher {
    /// Time `routine`, keeping the best per-iteration sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch sizing: grow the batch until one batch takes at
        // least ~5 ms so timer quantization doesn't dominate.
        let mut batch = 1usize;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let per_iter = start.elapsed() / batch as u32;
            if per_iter < self.best_per_iter {
                self.best_per_iter = per_iter;
            }
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns/iter")
    } else if ns < 1_000_000 {
        format!("{:.3} µs/iter", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms/iter", ns as f64 / 1e6)
    } else {
        format!("{:.3} s/iter", ns as f64 / 1e9)
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.sample_size(2);
        g.throughput(Throughput::Elements(100));
        let mut ran = false;
        g.bench_function("noop_sum", |b| {
            ran = true;
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.finish();
        assert!(ran);
    }
}
