//! Vendored derive macros for the serde shim.
//!
//! No syn/quote (crates.io is unreachable in this build environment), so the
//! input item is parsed directly from the `proc_macro::TokenStream`. The
//! parser covers exactly the shapes this workspace derives on: named-field
//! structs (optionally generic), tuple structs, unit structs, and enums with
//! unit / tuple / struct variants — all without `#[serde(...)]` attributes.
//!
//! Generated `Serialize` impls produce the same JSON tree upstream
//! `serde_json::to_value` would: structs as objects (sorted keys via the
//! shim's `BTreeMap` object representation), newtype structs as their inner
//! value, tuple structs as arrays, and enums externally tagged.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

enum Body {
    /// `struct S { a: T, b: U }` — field names in declaration order.
    NamedStruct(Vec<String>),
    /// `struct S(T, U);` — field count.
    TupleStruct(usize),
    /// `struct S;`
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Item {
    name: String,
    /// Type-parameter identifiers (lifetimes and const params unused here).
    generics: Vec<String>,
    body: Body,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    let generics = parse_generics(&tokens, &mut i);

    let body = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Body::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("derive only supports struct/enum, found `{other}`"),
    };

    Item {
        name,
        generics,
        body,
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1; // '#'
        if matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
            *i += 1;
        }
        match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *i += 1,
            other => panic!("malformed attribute, found {other:?}"),
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        // `pub(crate)`, `pub(super)`, `pub(in ...)`
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Parse `<A, B: Bound, 'a>` into the list of type-parameter names, leaving
/// `i` just past the closing `>`. Lifetimes are skipped; bounds are ignored.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    if !matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return params;
    }
    *i += 1;
    let mut depth = 1usize;
    // A new parameter starts at depth 1, right after `<` or a `,`.
    let mut at_param_start = true;
    while let Some(tok) = tokens.get(*i) {
        match tok {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        *i += 1;
                        break;
                    }
                }
                ',' if depth == 1 => at_param_start = true,
                '\'' => {
                    // Lifetime: consume the quote; the following ident is
                    // not a type parameter.
                    *i += 1;
                    at_param_start = false;
                    continue;
                }
                _ => {}
            },
            TokenTree::Ident(id) if at_param_start => {
                let s = id.to_string();
                if s != "const" {
                    params.push(s);
                }
                at_param_start = false;
            }
            _ => {}
        }
        *i += 1;
    }
    params
}

/// Field names of `{ a: T, b: U }`, skipping attributes, visibility, and
/// types (tracking `<`/`>` depth so commas inside generics don't split).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(name);
        skip_past_comma(&tokens, &mut i);
    }
    fields
}

/// Advance past the type (or expression) up to and including the next
/// top-level `,`, honoring angle-bracket nesting.
fn skip_past_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Field count of `(T, U)`: top-level commas + 1, minus a trailing comma.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0usize;
    let mut commas = 0usize;
    let mut last_was_comma = false;
    for tok in &tokens {
        last_was_comma = false;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    commas += 1;
                    last_was_comma = true;
                }
                _ => {}
            }
        }
    }
    commas + 1 - usize::from(last_was_comma)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip an optional `= discriminant` and the separating comma.
        skip_past_comma(&tokens, &mut i);
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `<T: serde::Serialize, U: serde::Serialize>` / `<T, U>` / empty pair.
fn generics_for(item: &Item, bound: Option<&str>) -> (String, String) {
    if item.generics.is_empty() {
        return (String::new(), String::new());
    }
    let decl: Vec<String> = item
        .generics
        .iter()
        .map(|g| match bound {
            Some(b) => format!("{g}: {b}"),
            None => g.clone(),
        })
        .collect();
    (
        format!("<{}>", decl.join(", ")),
        format!("<{}>", item.generics.join(", ")),
    )
}

fn render_serialize(item: &Item) -> String {
    let (impl_generics, ty_generics) = generics_for(item, Some("serde::Serialize"));
    let name = &item.name;
    let mut out = String::new();
    let _ = write!(
        out,
        "#[automatically_derived] impl{impl_generics} serde::Serialize for {name}{ty_generics} {{ \
         fn to_json_value(&self) -> serde::Value {{ "
    );
    match &item.body {
        Body::NamedStruct(fields) => {
            out.push_str("let mut map = ::std::collections::BTreeMap::new(); ");
            for f in fields {
                let _ = write!(
                    out,
                    "map.insert(::std::string::String::from(\"{f}\"), \
                     serde::Serialize::to_json_value(&self.{f})); "
                );
            }
            out.push_str("serde::Value::Object(map) ");
        }
        Body::TupleStruct(1) => {
            // Newtype: serialize as the inner value.
            out.push_str("serde::Serialize::to_json_value(&self.0) ");
        }
        Body::TupleStruct(n) => {
            out.push_str("serde::Value::Array(::std::vec![");
            for idx in 0..*n {
                let _ = write!(out, "serde::Serialize::to_json_value(&self.{idx}), ");
            }
            out.push_str("]) ");
        }
        Body::UnitStruct => {
            out.push_str("serde::Value::Null ");
        }
        Body::Enum(variants) => {
            out.push_str("match self { ");
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            out,
                            "{name}::{vname} => serde::Value::String(\
                             ::std::string::String::from(\"{vname}\")), "
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let _ = write!(out, "{name}::{vname}({}) => {{ ", binders.join(", "));
                        out.push_str("let mut map = ::std::collections::BTreeMap::new(); ");
                        if *n == 1 {
                            let _ = write!(
                                out,
                                "map.insert(::std::string::String::from(\"{vname}\"), \
                                 serde::Serialize::to_json_value(__f0)); "
                            );
                        } else {
                            let elems: Vec<String> = binders
                                .iter()
                                .map(|b| format!("serde::Serialize::to_json_value({b})"))
                                .collect();
                            let _ = write!(
                                out,
                                "map.insert(::std::string::String::from(\"{vname}\"), \
                                 serde::Value::Array(::std::vec![{}])); ",
                                elems.join(", ")
                            );
                        }
                        out.push_str("serde::Value::Object(map) } ");
                    }
                    VariantKind::Struct(fields) => {
                        let _ = write!(out, "{name}::{vname} {{ {} }} => {{ ", fields.join(", "));
                        out.push_str("let mut inner = ::std::collections::BTreeMap::new(); ");
                        for f in fields {
                            let _ = write!(
                                out,
                                "inner.insert(::std::string::String::from(\"{f}\"), \
                                 serde::Serialize::to_json_value({f})); "
                            );
                        }
                        let _ = write!(
                            out,
                            "let mut map = ::std::collections::BTreeMap::new(); \
                             map.insert(::std::string::String::from(\"{vname}\"), \
                             serde::Value::Object(inner)); serde::Value::Object(map) }} "
                        );
                    }
                }
            }
            out.push_str("} ");
        }
    }
    out.push_str("} }");
    out
}

fn render_deserialize(item: &Item) -> String {
    let (impl_generics, ty_generics) = generics_for(item, None);
    format!(
        "#[automatically_derived] impl{impl_generics} serde::Deserialize for {}{ty_generics} {{}}",
        item.name
    )
}
