//! Vendored, dependency-free subset of the `serde` API.
//!
//! The build environment has no access to crates.io, so this crate provides
//! exactly what the workspace needs: a [`Serialize`] trait that renders
//! directly into the JSON [`Value`] model (re-exported by the vendored
//! `serde_json`), a [`Deserialize`] marker trait (derived everywhere but never
//! invoked at runtime), and impls for the primitive and container types the
//! workspace's derived structs contain.
//!
//! Objects are backed by a `BTreeMap<String, Value>`, matching upstream
//! `serde_json`'s default (non-`preserve_order`) map: keys serialize in
//! sorted order, which is what the committed `results/*.json` artifacts
//! contain.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON value (the subset of `serde_json::Value` the workspace touches).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

/// A JSON number: integers keep their integer-ness so they print without a
/// decimal point, exactly as upstream `serde_json` does.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Value {
    /// `true` for `Value::Object`.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// `true` for `Value::Array`.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Member lookup on objects, `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The `&str` inside `Value::String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n as f64),
            Value::Number(Number::NegInt(n)) => Some(*n as f64),
            Value::Number(Number::Float(x)) => Some(*x),
            _ => None,
        }
    }

    /// Non-negative integer value, if it fits `u64` exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// The `bool` inside `Value::Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements of `Value::Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The map inside `Value::Object`.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// Serialization into the JSON [`Value`] model.
///
/// Upstream serde is format-agnostic; this workspace only ever serializes to
/// JSON, so the trait collapses to a single method.
pub trait Serialize {
    /// This value as a JSON tree.
    fn to_json_value(&self) -> Value;
}

/// Marker for deserializable types.
///
/// The workspace derives `Deserialize` on its data types but never actually
/// deserializes at runtime, so the shim keeps only the trait bound surface.
pub trait Deserialize {}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $ty {}
    )*};
}

macro_rules! ser_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_json_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(Number::NegInt(v))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
        impl Deserialize for $ty {}
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_json_value(&self) -> Value {
                let x = f64::from(*self);
                if x.is_finite() {
                    Value::Number(Number::Float(x))
                } else {
                    // serde_json maps non-finite floats to null.
                    Value::Null
                }
            }
        }
        impl Deserialize for $ty {}
    )*};
}

ser_float!(f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_json_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Reference / smart-pointer impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Deserialize> Deserialize for BTreeSet<T> {}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Deserialize> Deserialize for HashSet<T> {}

/// JSON object keys must be strings; mirror serde_json's runtime conversion
/// of integer keys and rejection of everything else.
fn key_string(value: Value) -> String {
    match value {
        Value::String(s) => s,
        Value::Number(Number::PosInt(n)) => n.to_string(),
        Value::Number(Number::NegInt(n)) => n.to_string(),
        other => panic!("map key must serialize to a string or integer, got {other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k.to_json_value()), v.to_json_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize, V: Deserialize> Deserialize for BTreeMap<K, V> {}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k.to_json_value()), v.to_json_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize, V: Deserialize> Deserialize for HashMap<K, V> {}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {}
    )*};
}

ser_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_object_keys_and_integer_map_keys() {
        let mut m = HashMap::new();
        m.insert(10u64, "ten");
        m.insert(2u64, "two");
        let v = m.to_json_value();
        match v {
            Value::Object(map) => {
                // BTreeMap<String> storage: lexicographic key order.
                let keys: Vec<_> = map.keys().cloned().collect();
                assert_eq!(keys, vec!["10".to_string(), "2".to_string()]);
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn option_and_nonfinite_floats_become_null() {
        assert_eq!(None::<u32>.to_json_value(), Value::Null);
        assert_eq!(f64::NAN.to_json_value(), Value::Null);
        assert_eq!(1.5f64.to_json_value(), Value::Number(Number::Float(1.5)));
    }
}
