//! The ChaCha block function, used at 12 rounds by [`crate::rngs::StdRng`].

/// "expand 32-byte k", little-endian.
pub const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: `key` is the 8 key words, `tail` the 4 trailing state
/// words (64-bit block counter in words 0–1, stream id in words 2–3, matching
/// `rand_chacha`'s legacy layout), `rounds` the round count (12 for StdRng).
pub fn chacha_block(key: &[u32; 8], tail: [u32; 4], rounds: u32) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    state[4..12].copy_from_slice(key);
    state[12..].copy_from_slice(&tail);
    let initial = state;
    debug_assert!(rounds.is_multiple_of(2));
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (word, &init) in state.iter_mut().zip(initial.iter()) {
        *word = word.wrapping_add(init);
    }
    state
}
