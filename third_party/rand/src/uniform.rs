//! Uniform range sampling, matching `rand` 0.8.5's
//! `UniformInt::sample_single_inclusive` (widening multiply + zone
//! rejection) bit-for-bit on 64-bit targets.

use crate::{Rng, RngCore};
use std::ops::{Range, RangeInclusive};

/// Ranges drawable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from this range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Integer types supporting uniform range draws.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `low..=high`.
    fn sample_inclusive<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_64 {
    ($ty:ty) => {
        impl SampleUniform for $ty {
            fn sample_inclusive<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
                debug_assert!(low <= high);
                let range = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                if range == 0 {
                    // The full span: any draw is uniform.
                    return Rng::gen::<u64>(rng) as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: u64 = Rng::gen::<u64>(rng);
                    let m = (v as u128) * (range as u128);
                    let (hi, lo) = ((m >> 64) as u64, m as u64);
                    if lo <= zone {
                        return (low as u64).wrapping_add(hi) as $ty;
                    }
                }
            }
        }
    };
}

uniform_64!(u64);
uniform_64!(usize);
uniform_64!(i64);

impl SampleUniform for u32 {
    fn sample_inclusive<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
        debug_assert!(low <= high);
        // rand 0.8.5 samples u32 ranges from single u32 draws.
        let range = high.wrapping_sub(low).wrapping_add(1);
        if range == 0 {
            return Rng::gen::<u32>(rng);
        }
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        loop {
            let v: u32 = Rng::gen::<u32>(rng);
            let m = u64::from(v) * u64::from(range);
            let (hi, lo) = ((m >> 32) as u32, m as u32);
            if lo <= zone {
                return low.wrapping_add(hi);
            }
        }
    }
}

impl<T: SampleRangeExclusive> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        // rand 0.8.5's sample_single delegates to the inclusive sampler on
        // `low..=high-1`; SampleUniform implementations above take the
        // already-decremented bound, so decrement here per type.
        T::sample_range_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_inclusive(low, high, rng)
    }
}

/// Helper so `Range<T>` can form `high - 1` per concrete type.
trait SampleRangeExclusive: SampleUniform {
    fn sample_range_exclusive<R: RngCore>(low: Self, end: Self, rng: &mut R) -> Self;
}

macro_rules! exclusive_int {
    ($ty:ty) => {
        impl SampleRangeExclusive for $ty {
            fn sample_range_exclusive<R: RngCore>(low: Self, end: Self, rng: &mut R) -> Self {
                Self::sample_inclusive(low, end - 1, rng)
            }
        }
    };
}

exclusive_int!(u32);
exclusive_int!(u64);
exclusive_int!(usize);
exclusive_int!(i64);
