//! `StdRng`: ChaCha12 behind a 4-block output buffer, reproducing
//! `rand` 0.8's `StdRng` (= `rand_chacha::ChaCha12Rng`) stream exactly,
//! including the buffered `next_u32`/`next_u64` interleaving semantics of
//! `rand_core::block::BlockRng`.

use crate::chacha::chacha_block;
use crate::{RngCore, SeedableRng};

/// Words buffered per refill: `rand_chacha` generates 4 ChaCha blocks
/// (256 bytes) at a time.
const BUF_WORDS: usize = 64;

/// The standard RNG, bit-compatible with `rand` 0.8's.
#[derive(Clone)]
pub struct StdRng {
    key: [u32; 8],
    /// 64-bit block counter (low word first), pre-increment of the next
    /// refill's first block.
    counter: u64,
    /// Buffered output words of the last refill.
    results: [u32; BUF_WORDS],
    /// Next unread index into `results`.
    index: usize,
}

impl StdRng {
    fn refill(&mut self) {
        for block in 0..4 {
            let c = self.counter.wrapping_add(block as u64);
            let tail = [c as u32, (c >> 32) as u32, 0, 0];
            let out = chacha_block(&self.key, tail, 12);
            self.results[block * 16..(block + 1) * 16].copy_from_slice(&out);
        }
        self.counter = self.counter.wrapping_add(4);
    }

    #[inline]
    fn generate_and_set(&mut self, index: usize) {
        self.refill();
        self.index = index;
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        StdRng {
            key,
            counter: 0,
            results: [0; BUF_WORDS],
            // Empty buffer: first draw triggers a refill.
            index: BUF_WORDS,
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.generate_and_set(0);
        }
        let value = self.results[self.index];
        self.index += 1;
        value
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Mirrors rand_core::block::BlockRng::next_u64, including the
        // buffer-straddling case, so mixed u32/u64 draws stay aligned with
        // upstream.
        let read_u64 = |results: &[u32; BUF_WORDS], index: usize| -> u64 {
            u64::from(results[index + 1]) << 32 | u64::from(results[index])
        };
        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index += 2;
            read_u64(&self.results, index)
        } else if index >= BUF_WORDS {
            self.generate_and_set(2);
            read_u64(&self.results, 0)
        } else {
            let x = u64::from(self.results[BUF_WORDS - 1]);
            self.generate_and_set(1);
            let y = u64::from(self.results[0]);
            (y << 32) | x
        }
    }
}

impl std::fmt::Debug for StdRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StdRng").finish_non_exhaustive()
    }
}
