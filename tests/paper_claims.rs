//! Integration tests asserting the paper's headline claims end-to-end,
//! across all crates — the validation targets listed in DESIGN.md §5.

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use alphasim::experiments::{apps, latency, memory, network, spec, stream, summary};
use alphasim::workloads::spec::Suite;

/// §3.1 / Fig. 4: "GS1280 has 3.8 times lower dependent-load memory latency
/// (32MB size) than the previous-generation GS320", with the 1.75–16 MB
/// band going the other way.
#[test]
fn fig04_crossover_structure() {
    let g = memory::LatencyMachine::gs1280();
    let q = memory::LatencyMachine::gs320();
    let at_32m =
        q.dependent_load_ns(32 << 20, 64, 30_000) / g.dependent_load_ns(32 << 20, 64, 30_000);
    assert!((3.2..=4.4).contains(&at_32m), "32MB advantage {at_32m}");
    // In the 8 MB band the GS320's 16 MB B-cache wins.
    let g8 = g.dependent_load_ns(8 << 20, 64, 30_000);
    let q8 = q.dependent_load_ns(8 << 20, 64, 30_000);
    assert!(q8 < g8, "GS320 must win at 8MB: {q8} vs {g8}");
}

/// §3.4 / Figs. 12–13: 4x average latency advantage, 6.6x read-dirty, and
/// the measured latency map.
#[test]
fn remote_latency_claims() {
    let (clean, dirty) = latency::fig12_ratios();
    assert!((3.0..=4.6).contains(&clean));
    assert!((5.0..=8.0).contains(&dirty));
    let grid = latency::fig13();
    assert_eq!(grid[0][0], 83.0);
    assert!((grid[2][2] - 259.0).abs() < 10.0);
}

/// §3.2 / Figs. 6–7: bandwidth levels and linear GS1280 scaling.
#[test]
fn stream_claims() {
    let f7 = stream::fig07();
    let g1 = f7.series_like("GS1280").unwrap().y_at(1.0).unwrap();
    let q1 = f7.series_like("GS320").unwrap().y_at(1.0).unwrap();
    assert!((6.0..=10.0).contains(&(g1 / q1)), "1P ratio {}", g1 / q1);
    let f6 = stream::fig06();
    let g = f6.series_like("GS1280").unwrap();
    assert!(g.y_at(64.0).unwrap() > 200.0, "64P aggregate");
}

/// §3.3: swim's cross-machine ratios and the facerec/ammp inversions,
/// through the full experiment driver.
#[test]
fn ipc_claims() {
    let fig = spec::ipc_figure(Suite::Fp);
    let names = spec::benchmark_names(Suite::Fp);
    let swim = names.iter().position(|&n| n == "swim").unwrap() as f64;
    let facerec = names.iter().position(|&n| n == "facerec").unwrap() as f64;
    let g = fig.series_like("GS1280").unwrap();
    let e = fig.series_like("ES45").unwrap();
    let q = fig.series_like("GS320").unwrap();
    assert!(g.y_at(swim).unwrap() / e.y_at(swim).unwrap() > 1.8);
    assert!(g.y_at(swim).unwrap() / q.y_at(swim).unwrap() > 3.0);
    assert!(e.y_at(facerec).unwrap() > g.y_at(facerec).unwrap());
}

/// §4 / Fig. 15: the GS1280 sustains much more load than the GS320 at far
/// flatter latency.
#[test]
fn load_test_claims() {
    let fig = network::fig15(&[1, 8, 30], 60);
    let g = fig.series_like("GS1280/64P").unwrap();
    let q = fig.series_like("GS320/32P").unwrap();
    let g_bw = g.points.iter().map(|p| p.x).fold(0.0, f64::max);
    let q_bw = q.points.iter().map(|p| p.x).fold(0.0, f64::max);
    assert!(g_bw > 8.0 * q_bw);
    // GS320 latency at its top load exceeds 2 microseconds in the paper;
    // demand a steep rise at least.
    let q_rise = q.points.last().unwrap().y / q.points[0].y;
    assert!(q_rise > 2.0, "GS320 latency rise {q_rise}");
}

/// §4.1 / Table 1 + Fig. 18: the shuffle's analytic and measured gains.
#[test]
fn shuffle_claims() {
    let t = summary::table1();
    // 4x2 exact; bisection column exact everywhere.
    for r in &t.rows {
        if r.label.contains("bisection") {
            assert!((r.computed - r.paper.unwrap()).abs() < 1e-9, "{}", r.label);
        }
    }
    let fig = network::fig18(&[1, 8, 30], 60);
    let torus_peak = fig.series[0].points.iter().map(|p| p.x).fold(0.0, f64::max);
    let shuffle_peak = fig.series[1].points.iter().map(|p| p.x).fold(0.0, f64::max);
    assert!(shuffle_peak > torus_peak);
}

/// §5.3 / Fig. 23: over 10x GUPS advantage at 32P.
#[test]
fn gups_claim() {
    let g = apps::gups_mups_gs1280(32, 60);
    let q = apps::gups_mups_gs320(32, 60);
    assert!(g > 10.0 * q, "GUPS: {g} vs {q}");
}

/// §6 / Figs. 25–26: striping hurts throughput workloads 10–30% and helps
/// hot spots.
#[test]
fn striping_claims() {
    let f25 = spec::fig25();
    let worst = f25.series[0].peak_y();
    assert!((0.10..=0.45).contains(&worst), "worst degradation {worst}");
    let f26 = network::fig26(&[4, 16, 30], 60);
    let plain = f26.series[0].points.iter().map(|p| p.x).fold(0.0, f64::max);
    let striped = f26.series[1].points.iter().map(|p| p.x).fold(0.0, f64::max);
    assert!(striped > 1.25 * plain);
}

/// §7 / Fig. 28: the summary table's structure — majority of rows > 1,
/// biggest wins on IP bandwidth / GUPS.
#[test]
fn summary_claims() {
    let t = summary::fig28(60);
    assert!(t.rows.len() >= 20, "{} rows", t.rows.len());
    let above_one = t.rows.iter().filter(|r| r.computed > 1.0).count();
    assert!(above_one >= t.rows.len() - 3);
    let ip = t
        .rows
        .iter()
        .find(|r| r.label.contains("Inter-Processor"))
        .unwrap();
    assert!(ip.computed > 8.0);
}
