//! Cross-crate integration: the substrates agree with each other where
//! they overlap.

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use alphasim::cache::Addr;
use alphasim::coherence::{AccessKind, Directory, ServedBy};
use alphasim::kernel::SimTime;
use alphasim::net::{MessageClass, Step};
use alphasim::system::{Gs1280, Gs320};
use alphasim::topology::graph::DistanceMatrix;
use alphasim::topology::{NodeId, Torus2D};
use alphasim::workloads::{Stream, StreamKernel};

/// Replaying a coherence transaction's critical legs through the network
/// simulator yields a latency consistent with the machine's analytic
/// read-dirty probe (within the serialization slack the two paths model
/// differently).
#[test]
fn protocol_legs_replay_through_network() {
    let machine = Gs1280::builder().cpus(16).build();
    let mut dir = Directory::new();
    let (req, home, owner) = (0usize, 5usize, 10usize);
    dir.access(home, owner, 42, AccessKind::Write);
    let t = dir.access(home, req, 42, AccessKind::Read);
    assert_eq!(t.served_by, ServedBy::OwnerCache);

    // Drive the three critical legs sequentially through the fabric.
    let mut net = machine.network();
    let mut now = SimTime::ZERO;
    for (i, leg) in t.critical.iter().enumerate() {
        net.send(
            now,
            NodeId::new(leg.from),
            NodeId::new(leg.to),
            leg.class,
            leg.bytes,
            i as u64,
        );
        let mut arrived = now;
        while let Some(step) = net.step() {
            if let Step::Delivered(d) = step {
                arrived = d.delivered_at;
                break;
            }
        }
        now = arrived;
    }
    let network_ns = now.since(SimTime::ZERO).as_ns();
    let analytic = machine
        .read_dirty(NodeId::new(req), NodeId::new(home), NodeId::new(owner))
        .as_ns();
    // The analytic probe adds fixed front-end/directory/cache costs that
    // the bare network walk does not include; network time must be below
    // the analytic figure but the hop share of it.
    assert!(network_ns < analytic, "{network_ns} vs {analytic}");
    assert!(
        network_ns > 0.4 * (analytic - 84.0),
        "{network_ns} vs {analytic}"
    );
}

/// The machine's one-way latency probe agrees with hop-by-hop composition
/// over the topology's BFS paths.
#[test]
fn analytic_paths_agree_with_bfs_hops() {
    let machine = Gs1280::builder().cpus(16).build();
    let torus = Torus2D::for_cpus(16);
    let d = DistanceMatrix::compute(&torus);
    let timing = machine.timing();
    let min_hop = timing.hop(alphasim::topology::LinkClass::Module);
    let max_hop = timing.hop(alphasim::topology::LinkClass::Cable);
    for a in 0..16 {
        for b in 0..16 {
            let hops = d.distance(NodeId::new(a), NodeId::new(b)) as u64;
            let one_way = machine.one_way(NodeId::new(a), NodeId::new(b));
            assert!(one_way >= min_hop * hops);
            assert!(one_way <= max_hop * hops);
        }
    }
}

/// STREAM's trace replayed against the GS1280's address map touches only
/// the running CPU's own region (PerCpu interleave) — locality is what
/// makes Fig. 7 scale linearly.
#[test]
fn stream_is_local_on_gs1280() {
    let machine = Gs1280::builder().cpus(4).mem_per_cpu(1 << 22).build();
    let s = Stream::new(8 * 1024); // 3 arrays x 64 KB
    for cpu in 0..4u64 {
        let base = cpu * (1 << 22);
        for addr in s.trace(StreamKernel::Triad, base) {
            assert_eq!(machine.home_of(addr).index(), cpu as usize);
        }
    }
}

/// The GS320's network simulator and its analytic probe agree on the
/// two-level structure: cross-QBB messages take strictly longer than
/// in-QBB ones.
#[test]
fn gs320_network_has_two_levels() {
    let m = Gs320::new(16);
    let mut net = m.network();
    net.send(
        SimTime::ZERO,
        NodeId::new(0),
        NodeId::new(1),
        MessageClass::Request,
        16,
        0,
    );
    net.send(
        SimTime::ZERO,
        NodeId::new(0),
        NodeId::new(12),
        MessageClass::Request,
        16,
        1,
    );
    let d = net.drain_deliveries();
    let local = d.iter().find(|x| x.tag == 0).unwrap().latency();
    let remote = d.iter().find(|x| x.tag == 1).unwrap().latency();
    assert!(remote.as_ns() > local.as_ns() + 150.0);
}

/// The coherence class rules forbid Io on the adaptive channel; the
/// simulator therefore routes Io deterministically even on a machine
/// carrying adaptive coherence traffic.
#[test]
fn io_and_coherence_coexist() {
    let machine = Gs1280::builder().cpus(16).build();
    let mut net = machine.network();
    for i in 0..40 {
        net.send(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(5),
            if i % 2 == 0 {
                MessageClass::Request
            } else {
                MessageClass::Io
            },
            64,
            i,
        );
    }
    let delivered = net.drain_deliveries();
    assert_eq!(delivered.len(), 40);
}

/// Striping changes line homes exactly as the machine model claims: the
/// Fig. 26 improvement requires half of a hot region to live on the
/// partner.
#[test]
fn striped_homes_split_across_pair() {
    let m = Gs1280::builder()
        .cpus(16)
        .mem_per_cpu(1 << 20)
        .striping(true)
        .build();
    let mut on_partner = 0;
    for line in 0..1024u64 {
        let home = m.home_of(Addr::new(line * 64)).index();
        assert!(home == 0 || home == 1, "line {line} on {home}");
        if home == 1 {
            on_partner += 1;
        }
    }
    assert_eq!(on_partner, 512);
}

/// The traffic matrix predicted from directory transactions matches the
/// bytes the network simulator actually moves, pair by pair (conservation
/// across the coherence/network boundary).
#[test]
fn traffic_matrix_matches_network_bytes() {
    use alphasim::coherence::TrafficMatrix;
    use alphasim::kernel::DetRng;

    let machine = Gs1280::builder().cpus(16).build();
    let mut dir = Directory::new();
    let mut tm = TrafficMatrix::new(16);
    let mut net = machine.network();
    let mut rng = DetRng::seeded(77);
    let mut expected_pairs: std::collections::HashMap<(usize, usize), u64> =
        std::collections::HashMap::new();

    let mut tag = 0u64;
    for _ in 0..300 {
        let cpu = rng.index(16);
        let line = rng.bits() % 64;
        let home = (line % 16) as usize;
        let kind = if rng.chance(0.3) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let txn = dir.access(home, cpu, line, kind);
        tm.record(&txn);
        for leg in txn.critical.iter().chain(&txn.side) {
            if leg.is_remote() {
                net.send(
                    net.now(),
                    NodeId::new(leg.from),
                    NodeId::new(leg.to),
                    leg.class,
                    leg.bytes,
                    tag,
                );
                tag += 1;
                *expected_pairs.entry((leg.from, leg.to)).or_default() += leg.bytes;
            }
        }
    }
    let deliveries = net.drain_deliveries();
    // Every predicted byte arrives, between exactly the predicted pair.
    let mut seen: std::collections::HashMap<(usize, usize), u64> = std::collections::HashMap::new();
    for d in &deliveries {
        *seen.entry((d.src.index(), d.dst.index())).or_default() += d.bytes;
    }
    assert_eq!(seen, expected_pairs);
    for (&(s, t), &b) in &expected_pairs {
        assert_eq!(tm.between(s, t), b, "pair {s}->{t}");
    }
    assert_eq!(
        tm.total(),
        expected_pairs.values().sum::<u64>(),
        "matrix total"
    );
}

/// Hot-spot traffic is recognisable from the matrix alone, before any
/// simulation — the Xmesh §6 workflow.
#[test]
fn traffic_matrix_flags_hot_spot_pattern() {
    use alphasim::coherence::TrafficMatrix;

    let mut dir = Directory::new();
    let mut tm = TrafficMatrix::new(16);
    for cpu in 1..16 {
        for l in 0..20u64 {
            tm.record(&dir.access(0, cpu, cpu as u64 * 1000 + l, AccessKind::Read));
        }
    }
    assert_eq!(tm.hot_spots(4.0), vec![0]);
    // Node 0 carries both the request fan-in and the data fan-out.
    let load: Vec<u64> = tm
        .inbound()
        .iter()
        .zip(tm.outbound())
        .map(|(i, o)| i + o)
        .collect();
    assert!(load[0] > 10 * load[1], "{load:?}");
}
