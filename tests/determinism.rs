//! Whole-experiment determinism: every figure driver produces bit-identical
//! output across runs (the property that makes EXPERIMENTS.md's numbers
//! reproducible on any machine).

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use alphasim::experiments::{apps, latency, memory, network, spec, stream, summary};
use alphasim::workloads::spec::Suite;

#[test]
fn analytic_figures_are_deterministic() {
    assert_eq!(spec::fig01(), spec::fig01());
    assert_eq!(stream::fig06(), stream::fig06());
    assert_eq!(stream::fig07(), stream::fig07());
    assert_eq!(spec::ipc_figure(Suite::Fp), spec::ipc_figure(Suite::Fp));
    assert_eq!(latency::fig12(), latency::fig12());
    assert_eq!(latency::fig13(), latency::fig13());
    assert_eq!(latency::fig14(), latency::fig14());
    assert_eq!(spec::fig25(), spec::fig25());
    assert_eq!(summary::table1(), summary::table1());
}

#[test]
fn cache_walk_figures_are_deterministic() {
    let sizes: Vec<u64> = (12..=22).map(|p| 1u64 << p).collect();
    assert_eq!(memory::fig04(&sizes, 2_000), memory::fig04(&sizes, 2_000));
}

#[test]
fn event_driven_figures_are_deterministic() {
    let windows = [1usize, 8];
    assert_eq!(network::fig15(&windows, 30), network::fig15(&windows, 30));
    assert_eq!(network::fig18(&windows, 30), network::fig18(&windows, 30));
    assert_eq!(network::fig26(&windows, 30), network::fig26(&windows, 30));
    assert_eq!(apps::fig23(30), apps::fig23(30));
}

#[test]
fn gups_and_summary_are_deterministic() {
    let a = apps::gups_mups_gs1280(16, 30);
    let b = apps::gups_mups_gs1280(16, 30);
    assert_eq!(a, b);
    assert_eq!(summary::fig28(20), summary::fig28(20));
}
