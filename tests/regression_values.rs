//! Golden-value regression tests: the headline numbers EXPERIMENTS.md
//! quotes, pinned exactly. Every value here is deterministic; if a
//! calibration or model change moves one, this suite names it so
//! EXPERIMENTS.md can be regenerated consciously rather than drifting.

// Test/harness code may unwrap freely; the workspace denies it in libraries.
#![allow(clippy::unwrap_used)]

use alphasim::experiments::{latency, stream, summary};
use alphasim::system::{Es45, Gs1280, Gs320};
use alphasim::topology::table1::shuffle_gains;
use alphasim::topology::NodeId;

#[test]
fn pinned_local_latencies() {
    let g = Gs1280::builder().cpus(16).build();
    assert_eq!(g.local_latency(true).as_ns(), 83.0);
    assert_eq!(g.local_latency(false).as_ns(), 130.0);
    assert_eq!(Gs320::new(16).local_latency(true).as_ns(), 330.0);
    assert_eq!(Es45::new(4).local_latency(true).as_ns(), 185.0);
}

#[test]
fn pinned_fig13_exact_cells() {
    let grid = latency::fig13();
    // The cells our calibration reproduces exactly (12 of 16).
    let exact = [
        (0, 0, 83.0),
        (1, 0, 145.0),
        (2, 0, 186.0),
        (3, 0, 154.0),
        (0, 1, 139.0),
        (2, 1, 221.0),
        (0, 3, 154.0),
        (1, 2, 221.0),
    ];
    for (x, y, want) in exact {
        assert_eq!(grid[y][x], want, "cell ({x},{y})");
    }
}

#[test]
fn pinned_table1_exact_rows() {
    let g42 = shuffle_gains(4, 2);
    assert_eq!(g42.torus, (12.0 / 7.0, 3, 4));
    assert_eq!(g42.shuffle, (10.0 / 7.0, 2, 8));
    let g44 = shuffle_gains(4, 4);
    assert_eq!(g44.torus.1, 4);
    assert_eq!(g44.shuffle.1, 3);
    assert_eq!(g44.torus.2, 8);
    assert_eq!(g44.shuffle.2, 8);
}

#[test]
fn pinned_stream_values() {
    let fig = stream::fig07();
    let y = |label: &str, x: f64| fig.series_like(label).unwrap().y_at(x).unwrap();
    assert!((y("GS1280", 1.0) - 4.43).abs() < 0.05);
    assert!((y("GS1280", 4.0) - 17.72).abs() < 0.2);
    assert!((y("ES45", 1.0) - 2.08).abs() < 0.05);
    assert!((y("GS320", 1.0) - 0.58).abs() < 0.05);
}

#[test]
fn pinned_remote_latency_structure() {
    let g = Gs1280::builder().cpus(64).build();
    // 8x8 torus: the diameter pair is 4+4 hops away.
    let far = g.read_clean(NodeId::new(0), NodeId::new(36));
    assert!((far.as_ns() - (83.0 + 21.0 + 2.0 * 8.0 * 21.0)).abs() < 35.0);
    let q = Gs320::new(32);
    assert!((q.read_clean(NodeId::new(0), NodeId::new(31)).as_ns() - 760.0).abs() < 5.0);
}

#[test]
fn pinned_fig28_component_rows() {
    let t = summary::fig28(30);
    let row = |label: &str| {
        t.rows
            .iter()
            .find(|r| r.label.starts_with(label))
            .unwrap()
            .computed
    };
    assert!((row("CPU speed") - 1.15 / 1.22).abs() < 1e-9);
    assert!((row("memory latency (local)") - 330.0 / 83.0).abs() < 0.02);
    assert!((row("I/O bandwidth (32P)") - 8.27).abs() < 0.05);
}
